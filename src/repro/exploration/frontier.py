"""Frontier machinery for the exhaustive model checker.

The compiled signature kernels that used to live here moved to
:mod:`repro.kernels.signature` when the simulation engine started sharing
them (they are re-exported below, so every historical import path keeps
working).  What remains exploration-specific is the deduplication layer:

:class:`VisitedSet`
    The deduplication set over signatures, batch-first: a whole frontier is
    deduplicated per round with :meth:`add_many` (``np.unique`` + one
    ``searchsorted`` sweep per layer) instead of per-key probes.  Layers,
    cheapest first:

    * ``_memory`` — a plain Python set fed by the scalar :meth:`add`;
    * ``_segments`` — sorted ``uint64`` arrays fed by the batch API, merged
      when they pile up;
    * ``_runs`` — on-disk sorted runs written whenever the in-memory layers
      reach ``spill_threshold``.  Signatures that fit 8 bytes are written
      **delta-encoded with block fences** (absolute ``uint64`` fence per
      512-key block, per-block deltas in the narrowest unsigned dtype that
      fits) and probed through ``np.memmap`` — a batch probe gathers only
      the touched blocks, decodes them with one ``cumsum`` and answers the
      whole batch with a single ``searchsorted``.  Runs are compacted
      k-way into one whenever more than ``max_runs`` accumulate, keeping
      membership ``O(log runs · log n)`` worst case and ``O(1)`` amortised
      per batched key.  Wider signatures keep the legacy big-endian
      fixed-width format (scalar probes, no compaction).

    Layers are mutually disjoint by construction — a signature is only ever
    inserted after missing every layer — so :meth:`__len__` stays exact.

See the :mod:`repro.kernels.signature` docstring for the kernel encodings
and the twin-node symmetry-reduction soundness argument.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator, List, Optional

try:  # batch layers need numpy; the scalar set/spill path works without it
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None  # type: ignore[assignment]

from repro.kernels.signature import (  # noqa: F401 — historical import surface
    _COUNT_BITS,
    _COUNT_MASK,
    _TwinClass,
    FullReversalExpander,
    NewPRExpander,
    OneStepPRExpander,
    PartialReversalExpander,
    SignatureExpander,
    _ListKernelMixin,
    compile_expander,
    mask_directed_edges,
    mask_is_acyclic,
    mask_is_destination_oriented,
    shard_of,
    twin_node_classes,
)

__all__ = [
    "FullReversalExpander",
    "NewPRExpander",
    "OneStepPRExpander",
    "PartialReversalExpander",
    "SignatureExpander",
    "VisitedSet",
    "compile_expander",
    "mask_directed_edges",
    "mask_is_acyclic",
    "mask_is_destination_oriented",
    "shard_of",
    "twin_node_classes",
]

#: Batch-inserted segments are merged into one once this many accumulate, so
#: a membership probe never scans more than a handful of sorted arrays.
_MAX_SEGMENTS = 8


# ----------------------------------------------------------------------
# on-disk sorted runs
# ----------------------------------------------------------------------
class _DeltaRun:
    """One immutable sorted run of ``uint64`` keys, delta-encoded on disk.

    Layout (little-endian): a 24-byte header (magic, key count, block size,
    delta item size), one absolute ``uint64`` **fence** per block, then one
    delta per key in the narrowest unsigned dtype that fits the largest
    intra-block gap.  Each block's first delta is stored as 0 (the fence is
    the absolute value), so decoding a block is ``fence + cumsum(deltas)``.
    The file is mapped read-only; probes touch only the fence array and the
    blocks their keys land in.
    """

    MAGIC = b"VSD1"
    HEADER = 24
    BLOCK = 512

    __slots__ = ("path", "count", "block", "_fences", "_deltas")

    @classmethod
    def write(cls, path: Path, values: "np.ndarray") -> "_DeltaRun":
        """Write sorted unique ``uint64`` ``values`` as a new run file."""
        count = int(values.size)
        block = cls.BLOCK
        fences = values[::block].astype("<u8")
        deltas = np.zeros(count, dtype=np.uint64)
        if count > 1:
            deltas[1:] = values[1:] - values[:-1]
        deltas[::block] = 0
        largest = int(deltas.max()) if count else 0
        if largest < (1 << 8):
            delta_dtype = "<u1"
        elif largest < (1 << 16):
            delta_dtype = "<u2"
        elif largest < (1 << 32):
            delta_dtype = "<u4"
        else:
            delta_dtype = "<u8"
        item = np.dtype(delta_dtype).itemsize
        with path.open("wb") as handle:
            handle.write(
                (cls.MAGIC + struct.pack("<QIB", count, block, item)).ljust(
                    cls.HEADER, b"\0"
                )
            )
            handle.write(fences.tobytes())
            handle.write(deltas.astype(delta_dtype).tobytes())
        return cls(path)

    def __init__(self, path: Path):
        self.path = path
        with path.open("rb") as handle:
            header = handle.read(self.HEADER)
        if header[:4] != self.MAGIC:
            raise ValueError(f"{path} is not a visited-set delta run")
        count, block, item = struct.unpack_from("<QIB", header, 4)
        self.count = count
        self.block = block
        blocks = (count + block - 1) // block
        self._fences = np.memmap(
            path, dtype="<u8", mode="r", offset=self.HEADER, shape=(blocks,)
        )
        self._deltas = np.memmap(
            path,
            dtype=f"<u{item}",
            mode="r",
            offset=self.HEADER + 8 * blocks,
            shape=(count,),
        )

    def decode_range(self, first_block: int, last_block: int) -> "np.ndarray":
        """Absolute keys of blocks ``[first_block, last_block)``, in order."""
        start = first_block * self.block
        stop = min(last_block * self.block, self.count)
        packed = np.zeros((last_block - first_block) * self.block, dtype=np.uint64)
        packed[: stop - start] = self._deltas[start:stop]
        matrix = packed.reshape(last_block - first_block, self.block)
        fences = np.asarray(
            self._fences[first_block:last_block], dtype=np.uint64
        )
        values = fences[:, None] + np.cumsum(matrix, axis=1, dtype=np.uint64)
        return values.ravel()[: stop - start]

    def contains_many(self, queries: "np.ndarray") -> "np.ndarray":
        """Membership of sorted unique ``uint64`` ``queries``, vectorised.

        Gathers only the touched blocks; the zero-padding of a partial
        block replicates its last key (delta 0), so the flattened decode
        stays globally sorted and one ``searchsorted`` answers everything.
        """
        hit = np.zeros(queries.size, dtype=bool)
        fences = np.asarray(self._fences, dtype=np.uint64)
        position = np.searchsorted(fences, queries, side="right").astype(np.int64) - 1
        valid = position >= 0
        if not valid.any():
            return hit
        touched = np.unique(position[valid])
        width = self.block
        gather = touched[:, None] * width + np.arange(width, dtype=np.int64)[None, :]
        in_range = gather < self.count
        deltas = np.zeros(gather.shape, dtype=np.uint64)
        deltas[in_range] = self._deltas[gather[in_range]]
        values = fences[touched][:, None] + np.cumsum(deltas, axis=1, dtype=np.uint64)
        flat = values.ravel()
        wanted = queries[valid]
        slot = np.minimum(np.searchsorted(flat, wanted), flat.size - 1)
        hit[valid] = flat[slot] == wanted
        return hit

    def contains_scalar(self, sig: int) -> bool:
        return bool(self.contains_many(np.array([sig], dtype=np.uint64))[0])

    def iter_chunks(self, chunk_blocks: int = 256) -> Iterator["np.ndarray"]:
        """The run's keys as bounded decoded chunks (streaming iteration)."""
        blocks = int(self._fences.shape[0])
        for first in range(0, blocks, chunk_blocks):
            yield self.decode_range(first, min(first + chunk_blocks, blocks))

    def close(self) -> None:
        for attribute in ("_fences", "_deltas"):
            mapped = getattr(getattr(self, attribute), "_mmap", None)
            if mapped is not None:
                mapped.close()
        try:
            self.path.unlink()
        except OSError:  # pragma: no cover - best-effort scratch cleanup
            pass


class _ByteRun:
    """Legacy fixed-width big-endian run for signatures wider than 8 bytes.

    Byte order equals numeric order, so membership is a per-key binary
    search over the file.  Iteration streams bounded chunks rather than
    materialising the whole run.
    """

    _CHUNK_RECORDS = 4096

    __slots__ = ("path", "count", "width", "_handle")

    @classmethod
    def write(cls, path: Path, ordered: List[int], width: int) -> "_ByteRun":
        with path.open("wb") as handle:
            for sig in ordered:
                handle.write(sig.to_bytes(width, "big"))
        return cls(path, len(ordered), width)

    def __init__(self, path: Path, count: int, width: int):
        self.path = path
        self.count = count
        self.width = width
        self._handle = path.open("rb")

    def contains_scalar(self, sig: int) -> bool:
        key = sig.to_bytes(self.width, "big")
        low, high = 0, self.count - 1
        while low <= high:
            mid = (low + high) // 2
            self._handle.seek(mid * self.width)
            record = self._handle.read(self.width)
            if record == key:
                return True
            if record < key:
                low = mid + 1
            else:
                high = mid - 1
        return False

    def contains_many(self, queries) -> "np.ndarray":
        return np.fromiter(
            (self.contains_scalar(int(sig)) for sig in queries),
            dtype=bool,
            count=int(queries.size),
        )

    def iter_keys(self) -> Iterator[int]:
        position = 0
        while position < self.count:
            take = min(self._CHUNK_RECORDS, self.count - position)
            self._handle.seek(position * self.width)
            data = self._handle.read(take * self.width)
            for k in range(take):
                yield int.from_bytes(
                    data[k * self.width : (k + 1) * self.width], "big"
                )
            position += take

    def close(self) -> None:
        self._handle.close()
        try:
            self.path.unlink()
        except OSError:  # pragma: no cover - best-effort scratch cleanup
            pass


# ----------------------------------------------------------------------
# visited set with optional disk spill
# ----------------------------------------------------------------------
class VisitedSet:
    """Signature deduplication set, batch-first, with optional disk spill.

    Without a ``spill_threshold`` this is an in-memory set (plus sorted
    batch segments).  With one, the in-memory layers are flushed to a
    sorted run file every time they reach the threshold — delta-encoded
    and mmap-probed for 8-byte keys, legacy fixed-width otherwise — and
    runs are compacted into one once more than ``max_runs`` accumulate.
    See the module docstring for the layer/probe design.
    """

    def __init__(
        self,
        key_bytes: Optional[int] = None,
        spill_threshold: Optional[int] = None,
        spill_dir: Optional[str] = None,
        max_runs: Optional[int] = 8,
    ):
        if spill_threshold is not None:
            if spill_threshold < 1:
                raise ValueError("spill_threshold must be positive")
            if key_bytes is None:
                raise ValueError(
                    "disk spill needs a fixed signature width (key_bytes); "
                    "the generic exploration path cannot spill"
                )
        if max_runs is not None and max_runs < 1:
            raise ValueError("max_runs must be positive")
        self._memory: set = set()
        self._segments: List = []  # sorted unique uint64 arrays
        self._segment_total = 0
        self._key_bytes = key_bytes
        self._threshold = spill_threshold
        self._max_runs = max_runs
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._created_dir: Optional[Path] = None  # auto temp dir, removed on close
        self._runs: List = []  # _DeltaRun | _ByteRun
        self._spilled_total = 0
        self._run_seq = 0
        self.spill_count = 0
        self.compaction_count = 0
        self._delta_format = (
            np is not None and (key_bytes is None or key_bytes <= 8)
        )

    # -- scalar membership ----------------------------------------------
    def add(self, sig) -> bool:
        """Insert ``sig``; returns ``True`` iff it was not present before."""
        if sig in self._memory:
            return False
        if self._segments and self._in_segments(sig):
            return False
        if self._runs and self._in_runs(sig):
            return False
        self._memory.add(sig)
        self._maybe_spill()
        return True

    def __contains__(self, sig) -> bool:
        return (
            sig in self._memory
            or (bool(self._segments) and self._in_segments(sig))
            or (bool(self._runs) and self._in_runs(sig))
        )

    def __len__(self) -> int:
        return len(self._memory) + self._segment_total + self._spilled_total

    def __iter__(self) -> Iterator:
        yield from self._memory
        for segment in self._segments:
            for value in segment:
                yield int(value)
        for run in self._runs:
            if isinstance(run, _ByteRun):
                yield from run.iter_keys()
            else:
                for chunk in run.iter_chunks():
                    for value in chunk:
                        yield int(value)

    def _in_segments(self, sig) -> bool:
        key = np.uint64(sig)
        for segment in self._segments:
            slot = int(np.searchsorted(segment, key))
            if slot < segment.size and segment[slot] == key:
                return True
        return False

    def _in_runs(self, sig) -> bool:
        return any(run.contains_scalar(sig) for run in self._runs)

    # -- batch membership -----------------------------------------------
    def contains_many(self, values: "np.ndarray") -> "np.ndarray":
        """Membership mask of **sorted unique** ``uint64`` ``values``."""
        hit = np.zeros(values.size, dtype=bool)
        if values.size == 0:
            return hit
        if self._memory:
            memory = np.fromiter(
                self._memory, dtype=np.uint64, count=len(self._memory)
            )
            memory.sort()
            slot = np.minimum(np.searchsorted(memory, values), memory.size - 1)
            hit |= memory[slot] == values
        for segment in self._segments:
            slot = np.minimum(np.searchsorted(segment, values), segment.size - 1)
            hit |= segment[slot] == values
        for run in self._runs:
            unresolved = ~hit
            if not unresolved.any():
                break
            hit[unresolved] = run.contains_many(values[unresolved])
        return hit

    def update_sorted(self, values: "np.ndarray") -> None:
        """Insert sorted unique ``uint64`` ``values`` known to be absent."""
        if values.size == 0:
            return
        self._segments.append(values)
        self._segment_total += int(values.size)
        if len(self._segments) >= _MAX_SEGMENTS:
            merged = np.sort(np.concatenate(self._segments))
            self._segments = [merged]
        self._maybe_spill()

    def add_many(self, values: "np.ndarray") -> "np.ndarray":
        """Deduplicate and insert a batch; mask of first-time-new positions.

        The returned bool array is aligned with ``values``: ``True`` exactly
        where the scalar ``add`` would have returned ``True`` (the *first*
        occurrence of a signature not previously present).
        """
        if np is None:  # pragma: no cover - the toolchain ships numpy
            raise RuntimeError("the batch VisitedSet API requires numpy")
        values = np.ascontiguousarray(values, dtype=np.uint64)
        unique, first_index, inverse = np.unique(
            values, return_index=True, return_inverse=True
        )
        known = self.contains_many(unique)
        self.update_sorted(unique[~known])
        first = np.zeros(values.size, dtype=bool)
        first[first_index] = True
        return (~known)[inverse] & first

    # -- spill plumbing -------------------------------------------------
    @property
    def spilled_runs(self) -> int:
        """Number of on-disk runs currently live."""
        return len(self._runs)

    @property
    def stats(self) -> dict:
        """Lifetime spill/compaction counters (telemetry surface)."""
        return {
            "spills": self.spill_count,
            "compactions": self.compaction_count,
            "runs": len(self._runs),
            "spilled_signatures": self._spilled_total,
        }

    def _maybe_spill(self) -> None:
        if self._threshold is None:
            return
        if len(self._memory) + self._segment_total < self._threshold:
            return
        self._spill()

    def _next_run_path(self) -> Path:
        if self._spill_dir is None:
            import tempfile

            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-visited-"))
            self._created_dir = self._spill_dir
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        path = self._spill_dir / f"run-{self._run_seq:05d}.bin"
        self._run_seq += 1
        return path

    def _spill(self) -> None:
        path = self._next_run_path()
        if self._delta_format:
            parts = list(self._segments)
            if self._memory:
                parts.append(
                    np.fromiter(
                        self._memory, dtype=np.uint64, count=len(self._memory)
                    )
                )
            values = np.sort(
                np.concatenate(parts) if len(parts) > 1 else parts[0]
            )
            run = _DeltaRun.write(path, values)
            count = int(values.size)
        else:
            ordered = sorted(
                set(self._memory).union(
                    int(value) for segment in self._segments for value in segment
                )
            )
            run = _ByteRun.write(path, ordered, self._key_bytes)
            count = len(ordered)
        self._runs.append(run)
        self._spilled_total += count
        self.spill_count += 1
        self._memory.clear()
        self._segments.clear()
        self._segment_total = 0
        if self._max_runs is not None and len(self._runs) > self._max_runs:
            self._compact()

    def _compact(self) -> None:
        """Merge every delta run into one (runs are disjoint, so concat+sort)."""
        if any(isinstance(run, _ByteRun) for run in self._runs):
            return  # legacy wide keys: no vectorised merge, keep runs as-is
        chunks = [chunk for run in self._runs for chunk in run.iter_chunks()]
        values = np.sort(np.concatenate(chunks))
        path = self._next_run_path()
        merged = _DeltaRun.write(path, values)
        for run in self._runs:
            run.close()
        self._runs = [merged]
        self.compaction_count += 1

    def close(self) -> None:
        """Drop every layer and delete the scratch run files.

        The runs are useless without the live maps/handles, so they are
        removed; an auto-created temp directory is removed with them (a
        caller-chosen ``spill_dir`` itself is left in place).  After
        ``close()`` the set is empty — ``len()`` is 0 and iteration yields
        nothing — rather than reporting a stale in-memory residue.
        """
        for run in self._runs:
            run.close()
        self._runs.clear()
        self._spilled_total = 0
        self._memory.clear()
        self._segments.clear()
        self._segment_total = 0
        if self._created_dir is not None:
            import shutil

            shutil.rmtree(self._created_dir, ignore_errors=True)
            self._created_dir = None
