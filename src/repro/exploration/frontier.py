"""Frontier machinery for the exhaustive model checker.

The compiled signature kernels that used to live here moved to
:mod:`repro.kernels.signature` when the simulation engine started sharing
them (they are re-exported below, so every historical import path keeps
working).  What remains exploration-specific is the deduplication layer:

:class:`VisitedSet`
    The deduplication set over signatures, with an optional disk spill: once
    the in-memory set reaches a threshold it is flushed as a sorted
    fixed-width run file, and membership checks binary-search the runs with
    ``O(log n)`` file seeks.  This keeps >10^7-state explorations within a
    bounded memory footprint.

See the :mod:`repro.kernels.signature` docstring for the kernel encodings
and the twin-node symmetry-reduction soundness argument.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.kernels.signature import (  # noqa: F401 — historical import surface
    _COUNT_BITS,
    _COUNT_MASK,
    _TwinClass,
    FullReversalExpander,
    NewPRExpander,
    OneStepPRExpander,
    PartialReversalExpander,
    SignatureExpander,
    _ListKernelMixin,
    compile_expander,
    mask_directed_edges,
    mask_is_acyclic,
    mask_is_destination_oriented,
    shard_of,
    twin_node_classes,
)

__all__ = [
    "FullReversalExpander",
    "NewPRExpander",
    "OneStepPRExpander",
    "PartialReversalExpander",
    "SignatureExpander",
    "VisitedSet",
    "compile_expander",
    "mask_directed_edges",
    "mask_is_acyclic",
    "mask_is_destination_oriented",
    "shard_of",
    "twin_node_classes",
]


# ----------------------------------------------------------------------
# visited set with optional disk spill
# ----------------------------------------------------------------------
class VisitedSet:
    """Signature deduplication set with optional sorted-run disk spill.

    Without a ``spill_threshold`` this is a thin wrapper over a Python set.
    With one, the in-memory set is flushed to a sorted fixed-width run file
    (big-endian ``key_bytes`` records, so byte order equals numeric order)
    every time it reaches the threshold, and membership checks fall back to a
    binary search over each run with ``O(log n)`` seeks.  Runs are mutually
    disjoint by construction — a signature is only ever added after missing
    both the memory set and every run — so :meth:`__len__` stays exact.
    """

    def __init__(
        self,
        key_bytes: Optional[int] = None,
        spill_threshold: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ):
        if spill_threshold is not None:
            if spill_threshold < 1:
                raise ValueError("spill_threshold must be positive")
            if key_bytes is None:
                raise ValueError(
                    "disk spill needs a fixed signature width (key_bytes); "
                    "the generic exploration path cannot spill"
                )
        self._memory: set = set()
        self._key_bytes = key_bytes
        self._threshold = spill_threshold
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._created_dir: Optional[Path] = None  # auto temp dir, removed on close
        self._runs: List[Tuple[Path, int, object]] = []  # (path, count, handle)
        self._spilled_total = 0

    # -- membership -----------------------------------------------------
    def add(self, sig) -> bool:
        """Insert ``sig``; returns ``True`` iff it was not present before."""
        if sig in self._memory:
            return False
        if self._runs and self._in_runs(sig):
            return False
        self._memory.add(sig)
        if self._threshold is not None and len(self._memory) >= self._threshold:
            self._spill()
        return True

    def __contains__(self, sig) -> bool:
        return sig in self._memory or (bool(self._runs) and self._in_runs(sig))

    def __len__(self) -> int:
        return len(self._memory) + self._spilled_total

    def __iter__(self) -> Iterator:
        yield from self._memory
        width = self._key_bytes
        for path, count, _handle in self._runs:
            data = path.read_bytes()
            for k in range(count):
                yield int.from_bytes(data[k * width:(k + 1) * width], "big")

    @property
    def spilled_runs(self) -> int:
        """Number of on-disk runs written so far."""
        return len(self._runs)

    # -- spill plumbing -------------------------------------------------
    def _spill(self) -> None:
        if self._spill_dir is None:
            import tempfile

            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-visited-"))
            self._created_dir = self._spill_dir
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        width = self._key_bytes
        path = self._spill_dir / f"run-{len(self._runs):05d}.bin"
        ordered = sorted(self._memory)
        with path.open("wb") as handle:
            for sig in ordered:
                handle.write(sig.to_bytes(width, "big"))
        self._runs.append((path, len(ordered), path.open("rb")))
        self._spilled_total += len(ordered)
        self._memory.clear()

    def _in_runs(self, sig) -> bool:
        width = self._key_bytes
        key = sig.to_bytes(width, "big")
        for _path, count, handle in self._runs:
            lo, hi = 0, count - 1
            while lo <= hi:
                mid = (lo + hi) // 2
                handle.seek(mid * width)
                record = handle.read(width)
                if record == key:
                    return True
                if record < key:
                    lo = mid + 1
                else:
                    hi = mid - 1
        return False

    def close(self) -> None:
        """Close spill-run handles and delete the scratch run files.

        The runs are useless without the live handles, so they are removed;
        an auto-created temp directory is removed with them (a caller-chosen
        ``spill_dir`` itself is left in place).
        """
        for path, _count, handle in self._runs:
            handle.close()
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort scratch cleanup
                pass
        self._runs.clear()
        self._spilled_total = 0
        if self._created_dir is not None:
            import shutil

            shutil.rmtree(self._created_dir, ignore_errors=True)
            self._created_dir = None
