"""Enumeration of all small DAG instances.

To claim "the invariant holds for every reachable state of every small
instance" the exhaustive model check needs to quantify over initial graphs as
well as over executions.  This module enumerates every labelled DAG on up to a
handful of nodes (optionally restricted to connected underlying graphs and to
a fixed destination), so the test suite and the invariant benchmarks can sweep
them all.

The enumeration is by construction acyclic: a DAG on ``n`` labelled nodes is
chosen by (1) picking which unordered node pairs are edges and (2) directing
every chosen edge from the lower-indexed node to the higher-indexed node of a
fixed reference order — i.e. we enumerate all subgraphs of the complete DAG on
a fixed topological order.  Every labelled DAG is isomorphic to one produced
this way, which is sufficient for invariant checking (the algorithms do not
depend on node identities).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence

from repro.core.graph import LinkReversalInstance


def all_dag_instances(
    num_nodes: int,
    destination_index: int = 0,
    require_connected: bool = False,
    min_edges: int = 1,
) -> Iterator[LinkReversalInstance]:
    """Yield every DAG instance on ``num_nodes`` labelled nodes.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are labelled ``0 .. num_nodes - 1``.
    destination_index:
        Which node (by reference-order position) is the destination.
    require_connected:
        Skip instances whose underlying undirected graph is disconnected.
    min_edges:
        Skip instances with fewer than this many edges (the empty graph is
        uninteresting for every experiment).

    The number of yielded instances is ``2 ** (n*(n-1)/2)`` before filtering,
    so this is intended for ``num_nodes <= 5`` in exhaustive sweeps.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    if not 0 <= destination_index < num_nodes:
        raise ValueError("destination_index out of range")

    nodes = tuple(range(num_nodes))
    destination = nodes[destination_index]
    candidate_edges = [
        (u, v) for u, v in itertools.combinations(nodes, 2)
    ]  # directed low -> high: automatically acyclic

    for bits in itertools.product((False, True), repeat=len(candidate_edges)):
        edges = tuple(edge for edge, keep in zip(candidate_edges, bits) if keep)
        if len(edges) < min_edges:
            continue
        instance = LinkReversalInstance(nodes, destination, edges)
        if require_connected and not instance.is_connected():
            continue
        yield instance


def all_connected_dag_instances(
    num_nodes: int, destination_index: int = 0
) -> Iterator[LinkReversalInstance]:
    """Every DAG instance on ``num_nodes`` nodes whose undirected graph is connected."""
    return all_dag_instances(
        num_nodes,
        destination_index=destination_index,
        require_connected=True,
        min_edges=max(1, num_nodes - 1),
    )


def sample_dag_instances(
    num_nodes: int,
    count: int,
    seed: int = 0,
    destination_index: int = 0,
    edge_probability: float = 0.5,
    require_connected: bool = True,
) -> Iterator[LinkReversalInstance]:
    """Yield ``count`` random DAG instances (for medium-size randomized sweeps).

    Each instance is built like the exhaustive enumeration (edges directed
    along a fixed order) but edges are included independently with
    ``edge_probability``.  Instances failing the connectivity filter are
    re-drawn, so exactly ``count`` instances are produced.
    """
    import random

    if not 0.0 < edge_probability <= 1.0:
        raise ValueError("edge_probability must be in (0, 1]")
    rng = random.Random(seed)
    nodes = tuple(range(num_nodes))
    destination = nodes[destination_index]
    candidate_edges = [(u, v) for u, v in itertools.combinations(nodes, 2)]

    produced = 0
    attempts = 0
    max_attempts = max(1000, 100 * count)
    while produced < count and attempts < max_attempts:
        attempts += 1
        edges = tuple(e for e in candidate_edges if rng.random() < edge_probability)
        if not edges:
            continue
        instance = LinkReversalInstance(nodes, destination, edges)
        if require_connected and not instance.is_connected():
            continue
        produced += 1
        yield instance
    if produced < count:
        raise RuntimeError(
            f"could only generate {produced} of {count} requested instances; "
            "increase edge_probability or relax connectivity"
        )
