"""First-class counterexample traces extracted by the model checker.

When exploration finds a state violating a predicate, the raw artefact is a
chain of predecessor pointers over compact int signatures.  This module turns
that chain into a :class:`CounterexampleTrace` — a named, serialisable object
that can be *replayed* through the automaton's transition function to
re-produce the violating state, so a failure report is never just "state
0x2f3 is bad" but a checked recipe for reaching it.

Two replay modes exist:

* :meth:`CounterexampleTrace.replay` re-applies the recorded actions from the
  automaton's initial state (validating every precondition) and returns the
  full :class:`~repro.automata.executions.Execution`.  This is exact whenever
  the trace was extracted without symmetry reduction.
* :meth:`CounterexampleTrace.verify_signatures` walks the recorded signature
  chain one transition at a time through a signature expander, canonicalising
  after every step.  This is the validity check for traces extracted *with*
  symmetry reduction, where each recorded state is the canonical
  representative of the orbit actually reached (see
  :mod:`repro.exploration.frontier` for the soundness argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.automata.ioa import Action, IOAutomaton
from repro.automata.executions import Execution, replay


@dataclass(frozen=True)
class CounterexampleTrace:
    """A replayable path from the initial state to a predicate violation.

    Attributes
    ----------
    automaton_name:
        Name of the automaton the trace belongs to (``PR``, ``FR``, ...).
    predicate_name:
        The predicate that failed on the final state of the trace.
    detail:
        Human-readable violation detail (e.g. the offending cycle).
    actions:
        The action sequence ``a_1 .. a_k`` reaching the violating state.
    signatures:
        Optional signature chain ``sig(s_0) .. sig(s_k)`` (one longer than
        ``actions``).  Present when the trace was extracted by the signature
        frontier; ``None`` for traces built by the legacy explorer.
    symmetry_reduced:
        When ``True`` the signatures are canonical orbit representatives and
        :meth:`replay` may diverge from the chain after the first symmetric
        step — use :meth:`verify_signatures` instead.
    reconstructed:
        ``False`` for failures beyond the checker's ``max_traced_failures``
        cap (or with trace tracking disabled): the violation is real but the
        path was not rebuilt, and :meth:`replay` refuses rather than
        returning a misleading empty execution.
    """

    automaton_name: str
    predicate_name: str
    detail: str
    actions: Tuple[Action, ...]
    signatures: Optional[Tuple[Hashable, ...]] = None
    symmetry_reduced: bool = False
    reconstructed: bool = True

    @property
    def depth(self) -> int:
        """Number of transitions from the initial state to the violation."""
        return len(self.actions)

    # ------------------------------------------------------------------
    # replay / validation
    # ------------------------------------------------------------------
    def replay(self, automaton: IOAutomaton) -> Execution:
        """Re-apply the recorded actions from the initial state.

        Every precondition is validated by
        :func:`repro.automata.executions.replay`; the returned execution's
        final state is the violating state.  Raises ``ValueError`` when the
        trace was extracted under symmetry reduction (the action sequence is
        then only valid between canonical representatives).
        """
        if not self.reconstructed:
            raise ValueError(
                "trace was not reconstructed (beyond max_traced_failures or "
                "trace tracking disabled); re-run with a higher cap to replay"
            )
        if self.symmetry_reduced:
            raise ValueError(
                "trace was extracted under symmetry reduction; "
                "use verify_signatures(expander) instead of replay()"
            )
        return replay(automaton, self.actions)

    def verify_signatures(self, expander) -> None:
        """Validate the trace one transition at a time through ``expander``.

        For every recorded step, the parent signature is decoded to a state,
        the action is checked to be enabled and applied, and the successor's
        (canonicalised, when applicable) signature is compared against the
        recorded child.  Raises ``ValueError`` on the first mismatch (an
        explicit raise, not an ``assert`` — the check must survive
        ``python -O``).
        """
        if self.signatures is None:
            raise ValueError("trace carries no signature chain to verify")
        automaton = expander.automaton
        for i, action in enumerate(self.actions):
            parent_sig, child_sig = self.signatures[i], self.signatures[i + 1]
            state = expander.state_for(parent_sig)
            if not automaton.is_enabled(state, action):
                raise ValueError(
                    f"step {i}: {action!r} not enabled in recorded state"
                )
            successor = automaton.apply(state, action)
            sig = expander.encode_state(successor)
            if self.symmetry_reduced:
                sig = expander.canonicalize(sig)
            if sig != child_sig:
                raise ValueError(
                    f"step {i}: replayed signature {sig!r} != recorded {child_sig!r}"
                )

    # ------------------------------------------------------------------
    # serialisation (the trace schema stored by ``repro check``)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: actor lists per action plus the signature chain.

        Actions are serialised exactly like
        :func:`repro.io.serialization.execution_to_dict` (a list of actor
        lists), so stored counterexamples share the executions' trace schema.
        Signatures are stringified — PR signatures can exceed JSON number
        precision in other tooling even though Python's :mod:`json` would
        round-trip them.
        """
        return {
            "automaton": self.automaton_name,
            "predicate": self.predicate_name,
            "detail": self.detail,
            "depth": self.depth,
            "actions": [{"actors": list(action.actors())} for action in self.actions],
            "signatures": (
                None
                if self.signatures is None
                else [str(sig) for sig in self.signatures]
            ),
            "symmetry_reduced": self.symmetry_reduced,
            "reconstructed": self.reconstructed,
        }

    def __str__(self) -> str:
        steps = " ; ".join(str(action) for action in self.actions) or "<initial state>"
        return (
            f"[{self.automaton_name}] {self.predicate_name} violated at depth "
            f"{self.depth}: {steps}"
        )
