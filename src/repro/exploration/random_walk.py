"""Randomized execution checking for instances too large to explore exhaustively.

A :class:`RandomWalkChecker` runs many independent random executions (each
with its own seed) of an automaton and evaluates a set of named predicates on
every visited state.  This does not prove the invariants — the exhaustive
explorer does that for small instances — but it exercises the algorithms on
graphs with hundreds of nodes, which is where the work and routing benchmarks
operate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.automata.executions import run
from repro.automata.ioa import IOAutomaton
from repro.exploration.state_space import StatePredicate, _predicate_outcome
from repro.schedulers.random_scheduler import RandomScheduler


@dataclass
class RandomWalkReport:
    """Summary of a batch of random executions."""

    automaton_name: str
    walks: int = 0
    states_checked: int = 0
    distinct_states: int = 0
    total_steps: int = 0
    non_converged_walks: int = 0
    failures: List[Tuple[int, str, str]] = field(default_factory=list)

    @property
    def all_predicates_hold(self) -> bool:
        """Whether every predicate held on every visited state of every walk."""
        return not self.failures

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        status = "OK" if self.all_predicates_hold else f"{len(self.failures)} FAILURE(S)"
        return (
            f"[{self.automaton_name}] {self.walks} walks, {self.total_steps} steps, "
            f"{self.states_checked} states checked — {status}"
        )


class RandomWalkChecker:
    """Run seeded random executions and check predicates on every state.

    Parameters
    ----------
    automaton:
        The automaton to execute.
    predicates:
        Mapping from predicate name to predicate (same protocol as the
        exhaustive explorer).
    walks:
        Number of independent executions.
    max_steps:
        Step bound per execution.
    base_seed:
        Walk ``i`` uses seed ``base_seed + i`` so the whole batch is
        reproducible.
    subset_probability:
        Forwarded to :class:`~repro.schedulers.random_scheduler.RandomScheduler`
        (probability of firing a random sink *subset* for PR).
    """

    def __init__(
        self,
        automaton: IOAutomaton,
        predicates: Mapping[str, StatePredicate],
        walks: int = 20,
        max_steps: Optional[int] = None,
        base_seed: int = 0,
        subset_probability: float = 0.0,
    ):
        self.automaton = automaton
        self.predicates = dict(predicates)
        self.walks = walks
        self.max_steps = max_steps
        self.base_seed = base_seed
        self.subset_probability = subset_probability

    def check(self) -> RandomWalkReport:
        """Run all walks and return the aggregate report."""
        report = RandomWalkReport(automaton_name=self.automaton.name)
        # states carry compact (int-based) signatures, so tracking how much of
        # the state space the walks actually covered is nearly free
        seen_signatures = set()
        for walk_index in range(self.walks):
            seed = self.base_seed + walk_index
            scheduler = RandomScheduler(seed=seed, subset_probability=self.subset_probability)

            def observer(step_index, pre_state, action, post_state, _walk=walk_index):
                report.states_checked += 1
                seen_signatures.add(post_state.signature())
                for name, predicate in self.predicates.items():
                    holds, detail = _predicate_outcome(predicate(post_state))
                    if not holds:
                        report.failures.append(
                            (_walk, name, detail or f"violated after step {step_index}")
                        )

            result = run(
                self.automaton,
                scheduler,
                max_steps=self.max_steps,
                observers=(observer,),
                record_states=False,
            )
            report.walks += 1
            report.total_steps += result.steps_taken
            if not result.converged:
                report.non_converged_walks += 1
        report.distinct_states = len(seen_signatures)
        return report
