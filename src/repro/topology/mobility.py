"""Random-waypoint mobility for the MANET routing experiments.

The random-waypoint model is the standard mobility workload in the ad-hoc
routing literature: each node repeatedly picks a random destination point in
the unit square and moves towards it at a constant speed.  As nodes move,
links appear and disappear; each :class:`TopologyChange` reports exactly which
links changed in a step so the route-maintenance layer can react (TORA-style
link reversal is triggered by a node losing its last outgoing link).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.topology.manet import GeometricNetwork

Node = Hashable
Position = Tuple[float, float]
Link = FrozenSet[Node]


@dataclass(frozen=True)
class TopologyChange:
    """Link-set difference produced by one mobility step."""

    step: int
    removed_links: FrozenSet[Link]
    added_links: FrozenSet[Link]

    @property
    def is_empty(self) -> bool:
        """Whether no link changed in this step."""
        return not self.removed_links and not self.added_links


class RandomWaypointMobility:
    """Random-waypoint movement over a :class:`GeometricNetwork`.

    Parameters
    ----------
    network:
        The initial network (positions are copied; the original is untouched).
    speed:
        Distance travelled per step (unit-square units).
    pause_steps:
        Number of steps a node rests after reaching its waypoint.
    seed:
        Seed for waypoint selection.
    pin_destination:
        When ``True`` (default) the routing destination does not move, which
        keeps the experiments focused on link failures among the other nodes.
    """

    def __init__(
        self,
        network: GeometricNetwork,
        speed: float = 0.05,
        pause_steps: int = 0,
        seed: int = 0,
        pin_destination: bool = True,
    ):
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.network = GeometricNetwork(
            dict(network.positions), network.radius, network.destination
        )
        self.speed = speed
        self.pause_steps = pause_steps
        self.pin_destination = pin_destination
        self._rng = random.Random(seed)
        self._waypoints: Dict[Node, Position] = {}
        self._pause_remaining: Dict[Node, int] = {u: 0 for u in self.network.nodes}
        self._step_count = 0
        for u in self.network.nodes:
            self._waypoints[u] = self._pick_waypoint()

    # ------------------------------------------------------------------
    def _pick_waypoint(self) -> Position:
        return (self._rng.random(), self._rng.random())

    @property
    def step_count(self) -> int:
        """Number of mobility steps performed so far."""
        return self._step_count

    def positions(self) -> Dict[Node, Position]:
        """Current node positions (copy)."""
        return dict(self.network.positions)

    # ------------------------------------------------------------------
    def step(self) -> TopologyChange:
        """Advance every node by one step and return the induced link changes."""
        before = self.network.links()
        new_positions: Dict[Node, Position] = {}
        for u in self.network.nodes:
            if self.pin_destination and u == self.network.destination:
                continue
            if self._pause_remaining[u] > 0:
                self._pause_remaining[u] -= 1
                continue
            new_positions[u] = self._advance(u)
        self.network = self.network.moved(new_positions)
        after = self.network.links()
        self._step_count += 1
        return TopologyChange(
            step=self._step_count,
            removed_links=frozenset(before - after),
            added_links=frozenset(after - before),
        )

    def run(self, steps: int) -> List[TopologyChange]:
        """Run several mobility steps and return every (possibly empty) change."""
        return [self.step() for _ in range(steps)]

    # ------------------------------------------------------------------
    def _advance(self, u: Node) -> Position:
        x, y = self.network.positions[u]
        wx, wy = self._waypoints[u]
        dx, dy = wx - x, wy - y
        dist = math.hypot(dx, dy)
        if dist <= self.speed:
            # reached the waypoint: pause, then pick a new one
            self._pause_remaining[u] = self.pause_steps
            self._waypoints[u] = self._pick_waypoint()
            return (wx, wy)
        scale = self.speed / dist
        return (x + dx * scale, y + dy * scale)
