"""Random geometric (unit-disk) networks — the standard MANET abstraction.

Link-reversal routing was designed for mobile ad-hoc networks, where nodes are
radios scattered in the plane and a link exists between two nodes when they
are within transmission range.  :class:`GeometricNetwork` captures exactly
that: node positions in the unit square, a communication radius, and helpers
to derive a :class:`~repro.core.graph.LinkReversalInstance` (with an initial
DAG orientation) and to recompute the link set after nodes move.

The paper itself has no MANET evaluation (it is a proof paper), but its
motivating applications — routing, leader election — are exercised on this
substrate in experiments E15–E17.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.graph import LinkReversalInstance

Node = Hashable
Position = Tuple[float, float]


@dataclass
class GeometricNetwork:
    """A set of nodes with planar positions and a communication radius.

    Attributes
    ----------
    positions:
        Mapping from node to ``(x, y)`` coordinates in the unit square.
    radius:
        Two nodes are linked iff their Euclidean distance is at most this.
    destination:
        The routing destination.
    """

    positions: Dict[Node, Position]
    radius: float
    destination: Node

    def __post_init__(self) -> None:
        if self.destination not in self.positions:
            raise ValueError("destination must have a position")
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes, in insertion order."""
        return tuple(self.positions)

    def distance(self, u: Node, v: Node) -> float:
        """Euclidean distance between two nodes."""
        (x1, y1), (x2, y2) = self.positions[u], self.positions[v]
        return math.hypot(x1 - x2, y1 - y2)

    def links(self) -> FrozenSet[FrozenSet[Node]]:
        """The current undirected link set induced by the radius."""
        nodes = self.nodes
        result = set()
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if self.distance(u, v) <= self.radius:
                    result.add(frozenset((u, v)))
        return frozenset(result)

    def is_connected(self) -> bool:
        """Whether the current link set connects all nodes."""
        nodes = self.nodes
        if not nodes:
            return True
        adjacency: Dict[Node, List[Node]] = {u: [] for u in nodes}
        for link in self.links():
            u, v = tuple(link)
            adjacency[u].append(v)
            adjacency[v].append(u)
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            u = frontier.pop()
            for v in adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == len(nodes)

    # ------------------------------------------------------------------
    def to_instance(self) -> LinkReversalInstance:
        """Derive a link-reversal instance with a destination-distance DAG orientation.

        Each link is oriented from the endpoint farther from the destination
        (in Euclidean distance, ties broken by node order) to the closer one,
        which yields an initial DAG that is already destination oriented —
        the state a MANET is in *before* mobility breaks links.
        """
        order = {u: i for i, u in enumerate(self.nodes)}

        def key(u: Node) -> Tuple[float, int]:
            return (self.distance(u, self.destination), order[u])

        edges: List[Tuple[Node, Node]] = []
        for link in sorted(self.links(), key=lambda l: tuple(sorted(order[x] for x in l))):
            u, v = tuple(link)
            if key(u) > key(v):
                edges.append((u, v))
            else:
                edges.append((v, u))
        return LinkReversalInstance(self.nodes, self.destination, tuple(edges))

    def moved(self, new_positions: Dict[Node, Position]) -> "GeometricNetwork":
        """Return a copy of the network with updated node positions."""
        positions = dict(self.positions)
        positions.update(new_positions)
        return GeometricNetwork(positions, self.radius, self.destination)


def random_geometric_instance(
    num_nodes: int,
    radius: float = 0.35,
    seed: int = 0,
    destination_index: int = 0,
    require_connected: bool = True,
    max_attempts: int = 200,
) -> Tuple[LinkReversalInstance, GeometricNetwork]:
    """Generate a connected random geometric network and its derived instance.

    Nodes are placed uniformly at random in the unit square.  If the induced
    link graph is disconnected the placement is retried (up to
    ``max_attempts``) with consecutive seeds, so the returned network is
    connected whenever ``require_connected`` is set.

    Returns the ``(instance, network)`` pair so callers can later move the
    nodes and diff the link sets.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    attempt = 0
    while True:
        rng = random.Random(seed + attempt)
        positions = {i: (rng.random(), rng.random()) for i in range(num_nodes)}
        network = GeometricNetwork(positions, radius, destination=destination_index)
        if not require_connected or network.is_connected():
            return network.to_instance(), network
        attempt += 1
        if attempt >= max_attempts:
            raise RuntimeError(
                f"could not generate a connected geometric network with n={num_nodes}, "
                f"radius={radius} in {max_attempts} attempts; increase the radius"
            )
