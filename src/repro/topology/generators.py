"""Deterministic and random topology generators.

Every generator returns a :class:`~repro.core.graph.LinkReversalInstance`
whose initial orientation is a DAG, as the paper's system model requires.
The families implemented here are the ones the experiment suite sweeps:

* ``chain_instance`` — a path ``D - v_1 - ... - v_n``; with all edges
  initially pointing *away* from the destination this is the classical
  worst-case family for total reversal work (``worst_case_chain_instance``);
* ``star_instance`` — destination in the centre or at a leaf;
* ``tree_instance`` — a random tree, edges oriented towards or away from the
  destination;
* ``grid_instance`` — a 2-D mesh with a corner destination;
* ``layered_instance`` — a layered DAG (each node connects to random nodes of
  the next layer), resembling the topologies used in the link-reversal
  literature's examples;
* ``random_dag_instance`` — an Erdős–Rényi-style random DAG.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.graph import LinkReversalInstance

Node = Hashable

#: The named topology families swept by the CLI and the experiment campaigns.
FAMILY_NAMES = (
    "chain",
    "oriented-chain",
    "star",
    "tree",
    "grid",
    "layered",
    "random-dag",
    "geometric",
)

#: Families whose :func:`build_family` output ignores the seed — every
#: replicate of a ``(family, size)`` cell is the *same* instance.  The batch
#: engine keys its instance/kernel cache on this, sharing one compiled
#: kernel across all replicate lanes; keep this set in sync with the
#: dispatch below (a family belongs here iff its branch never reads ``seed``).
SEEDLESS_FAMILIES = frozenset({"chain", "oriented-chain", "star", "grid"})


def build_family(name: str, size: int, seed: int) -> LinkReversalInstance:
    """Build one of the named topology families at the requested size.

    This is the single entry point behind both the CLI's ``--topology`` flag
    and the experiment campaigns' ``family`` axis, so every layer agrees on
    what e.g. ``"chain"`` at ``size=20`` means.  Deterministic: the same
    ``(name, size, seed)`` triple always yields an identical instance.
    """
    if name == "chain":
        return worst_case_chain_instance(max(1, size - 1))
    if name == "oriented-chain":
        return chain_instance(size, towards_destination=True)
    if name == "star":
        return star_instance(max(1, size - 1), destination_is_center=True)
    if name == "tree":
        return tree_instance(size, seed=seed)
    if name == "grid":
        side = max(2, int(round(size ** 0.5)))
        return grid_instance(side, side, oriented_towards_destination=False)
    if name == "layered":
        width = max(1, size // 4)
        return layered_instance(4, width, seed=seed)
    if name == "random-dag":
        return random_dag_instance(size, edge_probability=min(0.5, 6.0 / size), seed=seed)
    if name == "geometric":
        from repro.topology.manet import random_geometric_instance

        instance, _ = random_geometric_instance(size, radius=0.4, seed=seed)
        return instance
    raise ValueError(f"unknown topology {name!r}")


def chain_instance(
    num_nodes: int,
    towards_destination: bool = True,
    destination_at_end: bool = True,
) -> LinkReversalInstance:
    """A path on ``num_nodes`` nodes with the destination at one end.

    Parameters
    ----------
    num_nodes:
        Total number of nodes, including the destination (must be >= 2).
    towards_destination:
        When ``True`` every edge initially points towards the destination (the
        graph starts destination oriented, no work to do).  When ``False``
        every edge points away from it, which makes every non-destination node
        initially "bad" — the worst-case family of Busch & Tirthapura.
    destination_at_end:
        When ``True`` the destination is node 0 of the path; otherwise it is
        placed in the middle.
    """
    if num_nodes < 2:
        raise ValueError("a chain needs at least 2 nodes")
    nodes = tuple(range(num_nodes))
    destination = 0 if destination_at_end else num_nodes // 2
    edges: List[Tuple[Node, Node]] = []
    for left in range(num_nodes - 1):
        right = left + 1
        # orient each path edge relative to the destination's position
        if abs(left - destination) < abs(right - destination):
            closer, farther = left, right
        else:
            closer, farther = right, left
        if towards_destination:
            edges.append((farther, closer))
        else:
            edges.append((closer, farther))
    return LinkReversalInstance(nodes, destination, tuple(edges))


def worst_case_chain_instance(num_bad_nodes: int) -> LinkReversalInstance:
    """The canonical Θ(n_b²) worst-case chain.

    ``num_bad_nodes`` non-destination nodes sit on a path with every edge
    initially directed *away* from the destination, so none of them has a path
    to it and reversal waves must sweep back and forth across the whole chain.
    """
    if num_bad_nodes < 1:
        raise ValueError("need at least one bad node")
    return chain_instance(num_bad_nodes + 1, towards_destination=False)


def star_instance(num_leaves: int, destination_is_center: bool = True) -> LinkReversalInstance:
    """A star with ``num_leaves`` leaves.

    With the destination at the centre and edges pointing outwards, every leaf
    is initially a sink and must take exactly one (or two, for NewPR's dummy
    step) steps — a best-case family.
    """
    if num_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    center = 0
    leaves = tuple(range(1, num_leaves + 1))
    nodes = (center,) + leaves
    destination = center if destination_is_center else leaves[0]
    edges = []
    for leaf in leaves:
        if destination_is_center:
            edges.append((center, leaf))  # point away from the destination: leaves are bad
        else:
            edges.append((leaf, center))
    return LinkReversalInstance(nodes, destination, tuple(edges))


def tree_instance(
    num_nodes: int,
    seed: int = 0,
    oriented_towards_destination: bool = False,
) -> LinkReversalInstance:
    """A random tree rooted at the destination (node 0).

    Each non-root node attaches to a uniformly random earlier node.  Edges are
    oriented away from the root by default (all nodes bad) or towards it.
    """
    if num_nodes < 2:
        raise ValueError("a tree needs at least 2 nodes")
    rng = random.Random(seed)
    nodes = tuple(range(num_nodes))
    destination = 0
    edges: List[Tuple[Node, Node]] = []
    for child in range(1, num_nodes):
        parent = rng.randrange(0, child)
        if oriented_towards_destination:
            edges.append((child, parent))
        else:
            edges.append((parent, child))
    return LinkReversalInstance(nodes, destination, tuple(edges))


def grid_instance(
    rows: int,
    cols: int,
    oriented_towards_destination: bool = False,
) -> LinkReversalInstance:
    """A ``rows × cols`` mesh with the destination at the top-left corner.

    Edges connect horizontal and vertical neighbours; each edge is oriented
    towards the corner (destination oriented) or away from it.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if rows * cols < 2:
        raise ValueError("a grid needs at least 2 nodes")

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    nodes = tuple(range(rows * cols))
    destination = node_id(0, 0)
    edges: List[Tuple[Node, Node]] = []
    for r in range(rows):
        for c in range(cols):
            here = node_id(r, c)
            if c + 1 < cols:
                right = node_id(r, c + 1)
                edges.append((right, here) if oriented_towards_destination else (here, right))
            if r + 1 < rows:
                below = node_id(r + 1, c)
                edges.append((below, here) if oriented_towards_destination else (here, below))
    return LinkReversalInstance(nodes, destination, tuple(edges))


def layered_instance(
    layers: int,
    width: int,
    seed: int = 0,
    edges_per_node: int = 2,
) -> LinkReversalInstance:
    """A layered DAG: the destination alone in layer 0, ``width`` nodes per later layer.

    Every node in layer ``i`` (``i >= 1``) receives ``edges_per_node`` edges
    from distinct random nodes of layer ``i - 1``, oriented away from the
    destination (so deeper layers are initially bad).
    """
    if layers < 2:
        raise ValueError("need at least 2 layers")
    if width < 1:
        raise ValueError("width must be positive")
    rng = random.Random(seed)
    destination = 0
    nodes: List[Node] = [destination]
    layer_nodes: List[List[Node]] = [[destination]]
    next_id = 1
    for _ in range(1, layers):
        layer = list(range(next_id, next_id + width))
        next_id += width
        nodes.extend(layer)
        layer_nodes.append(layer)

    edges: List[Tuple[Node, Node]] = []
    for depth in range(1, layers):
        previous = layer_nodes[depth - 1]
        for node in layer_nodes[depth]:
            fan_in = min(edges_per_node, len(previous))
            parents = rng.sample(previous, fan_in)
            for parent in parents:
                edges.append((parent, node))
    return LinkReversalInstance(tuple(nodes), destination, tuple(edges))


def random_dag_instance(
    num_nodes: int,
    edge_probability: float = 0.3,
    seed: int = 0,
    require_connected: bool = True,
    orient_fraction_towards_destination: float = 0.0,
) -> LinkReversalInstance:
    """A seeded Erdős–Rényi-style random DAG.

    Nodes are placed on a fixed topological order (node 0, the destination,
    first); each forward pair becomes an edge with probability
    ``edge_probability``.  A fraction of the edges incident to the destination
    side can be pre-oriented towards it via
    ``orient_fraction_towards_destination`` — with the default 0.0 every edge
    points away from node 0 along the order, maximising the initial bad set.

    When ``require_connected`` is set, extra path edges are added along the
    order until the underlying undirected graph is connected (keeping the
    orientation acyclic).
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    if not 0.0 <= orient_fraction_towards_destination <= 1.0:
        raise ValueError("orient_fraction_towards_destination must be in [0, 1]")

    rng = random.Random(seed)
    nodes = tuple(range(num_nodes))
    destination = 0
    chosen: List[Tuple[Node, Node]] = []
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_probability:
                chosen.append((u, v))

    if require_connected:
        # ensure connectivity by adding consecutive path edges where needed
        adjacency = {u: set() for u in nodes}
        for u, v in chosen:
            adjacency[u].add(v)
            adjacency[v].add(u)
        for u in range(num_nodes - 1):
            # connect u+1 to the prefix if it is isolated from it
            if not any(w <= u for w in adjacency[u + 1]):
                chosen.append((u, u + 1))
                adjacency[u].add(u + 1)
                adjacency[u + 1].add(u)

    edges: List[Tuple[Node, Node]] = []
    for u, v in chosen:
        # (u, v) points away from the destination along the order; optionally
        # flip a fraction of the edges whose lower endpoint is the destination
        # region so parts of the graph start destination oriented.
        if rng.random() < orient_fraction_towards_destination:
            edges.append((v, u))
        else:
            edges.append((u, v))

    instance = LinkReversalInstance(nodes, destination, tuple(edges))
    if not instance.is_initially_acyclic():
        # flipping edges can only create cycles if the flip set is non-trivial;
        # regenerate deterministically without flips in that case.
        edges = [(u, v) for u, v in chosen]
        instance = LinkReversalInstance(nodes, destination, tuple(edges))
    return instance
