"""Topology generators and mobility models used by the experiments.

The paper's motivating domain is routing in networks "with frequently changing
topology" (mobile ad-hoc networks).  This subpackage provides the graph
families the benchmarks sweep over:

* :mod:`repro.topology.generators` — deterministic families (chains, grids,
  trees, stars, layered DAGs) and seeded random DAGs, all returned as
  :class:`~repro.core.graph.LinkReversalInstance` objects;
* :mod:`repro.topology.manet` — random geometric (unit-disk) graphs with node
  positions, the standard MANET abstraction;
* :mod:`repro.topology.mobility` — a random-waypoint mobility model that
  perturbs node positions over time and reports the link failures/additions
  each step induces (driving the route-maintenance experiments).
"""

from repro.topology.generators import (
    FAMILY_NAMES,
    build_family,
    chain_instance,
    grid_instance,
    layered_instance,
    random_dag_instance,
    star_instance,
    tree_instance,
    worst_case_chain_instance,
)
from repro.topology.manet import GeometricNetwork, random_geometric_instance
from repro.topology.mobility import RandomWaypointMobility, TopologyChange

__all__ = [
    "FAMILY_NAMES",
    "GeometricNetwork",
    "build_family",
    "RandomWaypointMobility",
    "TopologyChange",
    "chain_instance",
    "grid_instance",
    "layered_instance",
    "random_dag_instance",
    "random_geometric_instance",
    "star_instance",
    "tree_instance",
    "worst_case_chain_instance",
]
