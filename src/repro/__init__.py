"""repro — reproduction of *Partial Reversal Acyclicity* (Radeva & Lynch, 2011).

This package implements the link-reversal algorithms studied in the paper
(Partial Reversal ``PR``, its one-node-at-a-time variant ``OneStepPR``, the
paper's new parity-based variant ``NewPR``, and the Full Reversal baseline
``FR``), together with:

* an I/O-automaton framework for expressing the algorithms exactly as the
  paper does (:mod:`repro.automata`);
* verification machinery for the paper's invariants, the acyclicity theorems
  and the simulation relations R' and R (:mod:`repro.verification`);
* compiled int-signature kernels — the shared fast-path substrate of the
  exhaustive model checker and the scenario simulation engine
  (:mod:`repro.kernels`);
* a bounded model checker that exhaustively explores reachable states of any
  automaton on small instances (:mod:`repro.exploration`);
* schedulers / adversaries, work-counting and game-theoretic analysis
  (:mod:`repro.schedulers`, :mod:`repro.analysis`);
* a discrete-event simulator for asynchronous, message-passing executions of
  link reversal, and the routing / leader-election / mutual-exclusion
  applications that motivate the paper (:mod:`repro.distributed`,
  :mod:`repro.routing`, :mod:`repro.applications`);
* topology generators, including MANET-style geometric graphs and mobility
  (:mod:`repro.topology`).

Quickstart
----------

>>> from repro import LinkReversalInstance, PartialReversal, GreedyScheduler, run
>>> instance = LinkReversalInstance.from_directed_edges(
...     nodes=["d", "a", "b", "c"],
...     destination="d",
...     edges=[("d", "a"), ("a", "b"), ("b", "c")],
... )
>>> automaton = PartialReversal(instance)
>>> result = run(automaton, GreedyScheduler(seed=0))
>>> result.final_state.is_destination_oriented()
True
"""

from repro.core.graph import (
    EdgeDirection,
    LinkReversalInstance,
    Orientation,
)
from repro.core.embedding import PlanarEmbedding
from repro.core.pr import PartialReversal, PRState, ReverseSet
from repro.core.one_step_pr import OneStepPartialReversal, OneStepPRState
from repro.core.new_pr import NewPartialReversal, NewPRState, Parity
from repro.core.full_reversal import FullReversal, FRState
from repro.core.bll import BinaryLinkLabels, BLLState
from repro.core.heights import GBPartialReversalHeights, GBFullReversalHeights
from repro.automata.ioa import Action, IOAutomaton
from repro.automata.executions import Execution, ExecutionResult, run
from repro.schedulers.base import Scheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.adversarial import AdversarialScheduler, LazyScheduler
from repro.verification.acyclicity import is_acyclic, check_acyclic_execution
from repro.verification.invariants import (
    check_invariant_3_1,
    check_invariant_3_2,
    check_invariant_4_1,
    check_invariant_4_2,
)
from repro.verification.simulation import (
    RelationRPrime,
    RelationR,
    check_pr_to_onestep_simulation,
    check_onestep_to_newpr_simulation,
)
from repro.exploration.state_space import StateSpaceExplorer, ExplorationReport
from repro.exploration.checker import CheckReport, ModelChecker
from repro.exploration.counterexample import CounterexampleTrace
from repro.analysis.work import WorkSummary, count_reversals, compare_algorithms
from repro.topology.generators import (
    chain_instance,
    grid_instance,
    layered_instance,
    random_dag_instance,
    star_instance,
    tree_instance,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "AdversarialScheduler",
    "BLLState",
    "BinaryLinkLabels",
    "CheckReport",
    "CounterexampleTrace",
    "ModelChecker",
    "EdgeDirection",
    "Execution",
    "ExecutionResult",
    "ExplorationReport",
    "FRState",
    "FullReversal",
    "GBFullReversalHeights",
    "GBPartialReversalHeights",
    "GreedyScheduler",
    "IOAutomaton",
    "LazyScheduler",
    "LinkReversalInstance",
    "NewPRState",
    "NewPartialReversal",
    "OneStepPRState",
    "OneStepPartialReversal",
    "Orientation",
    "PRState",
    "Parity",
    "PartialReversal",
    "PlanarEmbedding",
    "RandomScheduler",
    "RelationR",
    "RelationRPrime",
    "ReverseSet",
    "Scheduler",
    "SequentialScheduler",
    "StateSpaceExplorer",
    "WorkSummary",
    "chain_instance",
    "check_acyclic_execution",
    "check_invariant_3_1",
    "check_invariant_3_2",
    "check_invariant_4_1",
    "check_invariant_4_2",
    "check_onestep_to_newpr_simulation",
    "check_pr_to_onestep_simulation",
    "compare_algorithms",
    "count_reversals",
    "grid_instance",
    "is_acyclic",
    "layered_instance",
    "random_dag_instance",
    "run",
    "star_instance",
    "tree_instance",
]
