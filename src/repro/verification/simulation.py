"""The simulation relations of Section 5, as executable checkers.

The paper transfers the acyclicity proof from NewPR back to the original PR
through two binary relations:

* **R′** relates reachable states of PR and OneStepPR: the directed graphs are
  identical and every node's ``list`` is identical (Section 5.2).
* **R** relates reachable states of OneStepPR and NewPR: the directed graphs
  are identical, and ``parity[u] = even`` implies ``list[u] ⊆ out_nbrs(u)``
  while ``parity[u] = odd`` implies ``list[u] ⊆ in_nbrs(u)`` (Section 5.3).

Lemma 5.1 / Lemma 5.3 show how to construct, for every step of the "source"
automaton, a finite sequence of steps of the "target" automaton that restores
the relation:

* a PR action ``reverse(S)`` corresponds to one ``reverse(u)`` of OneStepPR
  per ``u ∈ S`` (in any order);
* a OneStepPR action ``reverse(w)`` corresponds to one NewPR ``reverse(w)``
  when ``list[w] ≠ nbrs(w)``, and to *two* consecutive ``reverse(w)`` steps
  (a dummy step followed by a real one) when ``list[w] = nbrs(w)``.

The checkers below replay a recorded execution of the source automaton,
construct exactly that corresponding execution of the target automaton, and
verify the relation at every correspondence point.  This is the empirical
content of Theorems 5.2, 5.4 and 5.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.automata.executions import Execution
from repro.core.base import Reverse
from repro.core.graph import LinkReversalInstance
from repro.core.new_pr import NewPartialReversal, NewPRState, Parity
from repro.core.one_step_pr import OneStepPartialReversal, OneStepPRState
from repro.core.pr import PartialReversal, PRState, ReverseSet

Node = Hashable


# ----------------------------------------------------------------------
# the relations themselves
# ----------------------------------------------------------------------
class RelationRPrime:
    """The relation R′ between PR states and OneStepPR states (Section 5.2)."""

    def __init__(self, instance: LinkReversalInstance):
        self.instance = instance

    def holds(self, pr_state: PRState, onestep_state: OneStepPRState) -> bool:
        """Whether ``(pr_state, onestep_state) ∈ R′``."""
        return not self.violations(pr_state, onestep_state)

    def violations(self, pr_state: PRState, onestep_state: OneStepPRState) -> List[str]:
        """Human-readable descriptions of every violated condition of R′."""
        problems: List[str] = []
        if pr_state.graph_signature() != onestep_state.graph_signature():
            problems.append("directed graphs differ (condition 1 of R')")
        for u in self.instance.nodes:
            if pr_state.list_of(u) != onestep_state.list_of(u):
                problems.append(
                    f"list[{u}] differs: PR has {sorted(map(str, pr_state.list_of(u)))}, "
                    f"OneStepPR has {sorted(map(str, onestep_state.list_of(u)))} (condition 2 of R')"
                )
        return problems


class RelationR:
    """The relation R between OneStepPR states and NewPR states (Section 5.3)."""

    def __init__(self, instance: LinkReversalInstance):
        self.instance = instance

    def holds(self, onestep_state: OneStepPRState, newpr_state: NewPRState) -> bool:
        """Whether ``(onestep_state, newpr_state) ∈ R``."""
        return not self.violations(onestep_state, newpr_state)

    def violations(self, onestep_state: OneStepPRState, newpr_state: NewPRState) -> List[str]:
        """Human-readable descriptions of every violated condition of R."""
        problems: List[str] = []
        if onestep_state.graph_signature() != newpr_state.graph_signature():
            problems.append("directed graphs differ (condition 1 of R)")
        for u in self.instance.nodes:
            lst = onestep_state.list_of(u)
            parity = newpr_state.parity(u)
            if parity is Parity.EVEN and not lst <= self.instance.out_nbrs(u):
                problems.append(
                    f"parity[{u}] is even but list[{u}]={sorted(map(str, lst))} "
                    "is not a subset of out_nbrs (condition 2 of R)"
                )
            if parity is Parity.ODD and not lst <= self.instance.in_nbrs(u):
                problems.append(
                    f"parity[{u}] is odd but list[{u}]={sorted(map(str, lst))} "
                    "is not a subset of in_nbrs (condition 3 of R)"
                )
        return problems


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class SimulationCheckResult:
    """Outcome of checking a simulation relation along one execution."""

    relation_name: str
    holds: bool
    correspondence_points: int
    failures: List[Tuple[int, str]] = field(default_factory=list)
    corresponding_execution: Optional[Execution] = None

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.holds:
            return (
                f"{self.relation_name}: holds at all {self.correspondence_points} "
                "correspondence points"
            )
        lines = [f"{self.relation_name}: FAILED at {len(self.failures)} point(s)"]
        for index, reason in self.failures[:10]:
            lines.append(f"  source step {index}: {reason}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Lemma 5.1 / Theorem 5.2 — PR simulates OneStepPR via R'
# ----------------------------------------------------------------------
def check_pr_to_onestep_simulation(
    pr_execution: Execution,
    instance: Optional[LinkReversalInstance] = None,
) -> SimulationCheckResult:
    """Replay a PR execution, build the corresponding OneStepPR execution, check R′.

    For each PR action ``reverse(S)`` the corresponding OneStepPR fragment is
    one ``reverse(u)`` per ``u ∈ S`` (Lemma 5.1).  The relation is required to
    hold initially and after every completed fragment.
    """
    if instance is None:
        instance = pr_execution.automaton.instance
    relation = RelationRPrime(instance)
    onestep = OneStepPartialReversal(instance)
    onestep_execution = Execution(onestep, onestep.initial_state())

    failures: List[Tuple[int, str]] = []
    points = 0

    t_state = onestep_execution.final_state
    points += 1
    for problem in relation.violations(pr_execution.initial_state, t_state):
        failures.append((0, f"initial states: {problem}"))

    for step in pr_execution.steps():
        action = step.action
        if isinstance(action, Reverse):
            nodes: Tuple[Node, ...] = (action.node,)
        elif isinstance(action, ReverseSet):
            nodes = action.actors()
        else:  # pragma: no cover - defensive
            failures.append((step.index, f"unexpected action type {type(action).__name__}"))
            continue
        for u in nodes:
            sub_action = Reverse(u)
            if not onestep.is_enabled(t_state, sub_action):
                failures.append(
                    (step.index, f"corresponding OneStepPR action reverse({u}) is not enabled")
                )
                break
            t_state = onestep.apply(t_state, sub_action)
            onestep_execution.append(sub_action, t_state)
        points += 1
        for problem in relation.violations(step.post_state, t_state):
            failures.append((step.index, problem))

    return SimulationCheckResult(
        relation_name="R' (PR -> OneStepPR)",
        holds=not failures,
        correspondence_points=points,
        failures=failures,
        corresponding_execution=onestep_execution,
    )


# ----------------------------------------------------------------------
# Lemma 5.3 / Theorem 5.4 — OneStepPR simulates NewPR via R
# ----------------------------------------------------------------------
def check_onestep_to_newpr_simulation(
    onestep_execution: Execution,
    instance: Optional[LinkReversalInstance] = None,
) -> SimulationCheckResult:
    """Replay a OneStepPR execution, build the corresponding NewPR execution, check R.

    For each OneStepPR action ``reverse(w)`` the corresponding NewPR fragment
    is a single ``reverse(w)`` when ``list[w] ≠ nbrs(w)`` and two consecutive
    ``reverse(w)`` steps otherwise (Lemma 5.3).
    """
    if instance is None:
        instance = onestep_execution.automaton.instance
    relation = RelationR(instance)
    newpr = NewPartialReversal(instance)
    newpr_execution = Execution(newpr, newpr.initial_state())

    failures: List[Tuple[int, str]] = []
    points = 0

    t_state = newpr_execution.final_state
    points += 1
    for problem in relation.violations(onestep_execution.initial_state, t_state):
        failures.append((0, f"initial states: {problem}"))

    for step in onestep_execution.steps():
        action = step.action
        if isinstance(action, ReverseSet):
            if len(action.nodes) != 1:
                failures.append(
                    (step.index, "OneStepPR execution contains a multi-node action")
                )
                continue
            (w,) = tuple(action.nodes)
        elif isinstance(action, Reverse):
            w = action.node
        else:  # pragma: no cover - defensive
            failures.append((step.index, f"unexpected action type {type(action).__name__}"))
            continue

        pre_list = step.pre_state.list_of(w)
        repetitions = 2 if pre_list == instance.nbrs(w) else 1
        ok = True
        for _ in range(repetitions):
            sub_action = Reverse(w)
            if not newpr.is_enabled(t_state, sub_action):
                failures.append(
                    (step.index, f"corresponding NewPR action reverse({w}) is not enabled")
                )
                ok = False
                break
            t_state = newpr.apply(t_state, sub_action)
            newpr_execution.append(sub_action, t_state)
        points += 1
        if ok:
            for problem in relation.violations(step.post_state, t_state):
                failures.append((step.index, problem))

    return SimulationCheckResult(
        relation_name="R (OneStepPR -> NewPR)",
        holds=not failures,
        correspondence_points=points,
        failures=failures,
        corresponding_execution=newpr_execution,
    )


# ----------------------------------------------------------------------
# Theorem 5.5 — the full chain PR -> OneStepPR -> NewPR
# ----------------------------------------------------------------------
@dataclass
class SimulationChainResult:
    """Result of checking R' then R along one PR execution (Theorem 5.5)."""

    r_prime: SimulationCheckResult
    r: SimulationCheckResult

    @property
    def holds(self) -> bool:
        """Whether both relations held at every correspondence point."""
        return self.r_prime.holds and self.r.holds

    def __bool__(self) -> bool:
        return self.holds


def check_full_simulation_chain(pr_execution: Execution) -> SimulationChainResult:
    """Check R′ along a PR execution, then R along the constructed OneStepPR execution.

    This mirrors the proof of Theorem 5.5: every reachable PR state is related
    (via R′ then R) to a reachable NewPR state with the same directed graph,
    so PR inherits NewPR's acyclicity.
    """
    r_prime_result = check_pr_to_onestep_simulation(pr_execution)
    onestep_execution = r_prime_result.corresponding_execution
    if onestep_execution is None:  # pragma: no cover - defensive
        raise RuntimeError("R' check did not produce a corresponding execution")
    r_result = check_onestep_to_newpr_simulation(onestep_execution)
    return SimulationChainResult(r_prime=r_prime_result, r=r_result)


# ----------------------------------------------------------------------
# mask-level fast path: the same chain on compiled int kernels
# ----------------------------------------------------------------------
@dataclass
class MaskSimulationChainReport:
    """Result of the mask-level R′-then-R chain check along a PR actor trace.

    The counters mirror :class:`SimulationChainResult`: for a failure-free
    trace, ``r_prime_points == len(trace) + 1``, ``onestep_steps`` is the
    length of the constructed OneStepPR execution, ``r_points`` is
    ``onestep_steps + 1`` and ``newpr_steps`` the length of the constructed
    NewPR execution (dummy steps included).  ``failures`` records the first
    detection of each violation (the object checkers re-report a persisting
    violation at every subsequent point; the *verdicts* agree).  The
    object-level checkers above remain the oracle; the differential tests
    pin the two implementations to identical verdicts and counts.
    """

    r_prime_holds: bool
    r_holds: bool
    r_prime_points: int
    r_points: int
    pr_actions: int
    onestep_steps: int
    newpr_steps: int
    failures: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """Whether both relations held at every correspondence point."""
        return self.r_prime_holds and self.r_holds

    def __bool__(self) -> bool:
        return self.holds


class MaskSimulationChain:
    """Reusable mask-level checker of Theorem 5.5's simulation chain.

    Compiles the OneStepPR and NewPR kernels for one instance once; every
    :meth:`check` call then runs a single fused pass over a PR actor-id
    trace, entirely on int signatures:

    * **R′** — the PR and OneStepPR kernels share one signature layout *and*
      one single-step function (PR's ``reverse(S)`` kernel effect is by
      construction the composition of the members' OneStepPR steps — the
      object-level equivalence of that composition with Algorithm 1's
      simultaneous effect is pinned by the kernel differential tests), so
      condition 1 (same directed graph) and condition 2 (same lists) hold
      identically whenever the corresponding execution *exists*.  What the
      pass verifies is exactly Lemma 5.1's remaining content: every
      fragment action ``reverse(u)``, ``u ∈ S``, is enabled where the
      construction needs it.
    * **R** — per OneStepPR step the Lemma 5.3 fragment (two NewPR steps
      when ``list[w] = nbrs(w)``, one otherwise) is applied to the NewPR
      signature, and the relation is re-checked *incrementally*: a node's
      (row, parity) pair only changes when the step touches it, so only the
      actor and the partners whose row gained a bit are re-tested — the
      parity conditions are subset tests of the ``list[u]`` row against a
      precomputed allowed-position mask (initial out-neighbour positions
      for even parity, in-neighbour positions for odd).
    """

    def __init__(self, instance: LinkReversalInstance):
        from repro.kernels.signature import NewPRExpander, OneStepPRExpander

        self.instance = instance
        self._os_kernel = OneStepPRExpander(OneStepPartialReversal(instance))
        self._npr_kernel = NewPRExpander(NewPartialReversal(instance))
        self._edge_mask = (1 << instance.edge_count) - 1
        self._inc = instance._incident_mask
        self._tail = instance._tail_sel
        n = instance.node_count
        # per node: allowed list-row positions under even parity = positions
        # of the initial out-neighbours (the edges the node initially tails)
        even_allowed = []
        for i in range(n):
            allowed = 0
            for k, e in enumerate(instance._incident_eids[i]):
                if (self._tail[i] >> e) & 1:
                    allowed |= 1 << k
            even_allowed.append(allowed)
        self._even_allowed = tuple(even_allowed)
        self._odd_allowed = tuple(
            self._os_kernel._row_mask[i] ^ even_allowed[i] for i in range(n)
        )
        # per node: incident neighbour ids aligned with the CSR rows
        node_id = instance._node_id
        self._nbr_ids = tuple(
            tuple(node_id[v] for v in row) for row in instance._incident_nbrs
        )
        self._dest = instance._dest_id
        self._degree = instance._degree

    def check(self, pr_trace: Sequence[Tuple[int, ...]]) -> MaskSimulationChainReport:
        """Check the chain along one PR execution given as actor-id tuples.

        ``pr_trace`` is one tuple per ``reverse(S)`` action (e.g. recorded
        by :meth:`repro.kernels.simulator.SignatureSimulator.run_phase`).
        """
        os_kernel = self._os_kernel
        npr_kernel = self._npr_kernel
        os_step = os_kernel.step
        npr_step = npr_kernel.step
        row_shift = os_kernel._row_shift
        row_mask = os_kernel._row_mask
        npr_shift = npr_kernel._shift
        even_allowed = self._even_allowed
        odd_allowed = self._odd_allowed
        nbr_ids = self._nbr_ids
        edge_mask = self._edge_mask

        inc = self._inc
        tail = self._tail
        failures: List[Tuple[int, str]] = []
        r_failures: List[Tuple[int, str]] = []
        os_sig = os_kernel.initial_signature()
        npr_sig = npr_kernel.initial_signature()
        onestep_steps = 0
        newpr_steps = 0
        r_points = 1  # the initial correspondence point (empty rows: holds)

        for index, token in enumerate(pr_trace):
            for w in token:
                # Lemma 5.1: the OneStepPR fragment action must be enabled
                # (sink test inlined — this loop dominates the whole check)
                if ((os_sig ^ tail[w]) & inc[w]) or not self._degree[w] or w == self._dest:
                    failures.append(
                        (index, f"corresponding OneStepPR action for id {w} not enabled")
                    )
                    break
                pre_row = (os_sig >> row_shift[w]) & row_mask[w]
                os_sig = os_step(os_sig, w)
                onestep_steps += 1
                # Lemma 5.3: a dummy-plus-real NewPR pair when the list was full
                repetitions = 2 if pre_row == row_mask[w] else 1
                fragment_ok = True
                for _ in range(repetitions):
                    if (npr_sig ^ tail[w]) & inc[w]:
                        r_failures.append(
                            (onestep_steps - 1,
                             f"corresponding NewPR action for id {w} not enabled")
                        )
                        fragment_ok = False
                        break
                    npr_sig = npr_step(npr_sig, w)
                    newpr_steps += 1
                r_points += 1
                if fragment_ok:
                    if (os_sig ^ npr_sig) & edge_mask:
                        r_failures.append(
                            (onestep_steps - 1, "directed graphs differ (R)")
                        )
                    # only the actor's parity and its partners' rows changed;
                    # w's own row was just cleared, so only partners matter
                    for j in nbr_ids[w]:
                        row = (os_sig >> row_shift[j]) & row_mask[j]
                        if not row:
                            continue
                        allowed = (
                            odd_allowed[j]
                            if (npr_sig >> npr_shift[j]) & 1
                            else even_allowed[j]
                        )
                        if row & ~allowed:
                            r_failures.append(
                                (onestep_steps - 1,
                                 f"list row of id {j} escapes its parity set (R)")
                            )

        return MaskSimulationChainReport(
            r_prime_holds=not failures,
            r_holds=not r_failures,
            r_prime_points=len(pr_trace) + 1,
            r_points=r_points,
            pr_actions=len(pr_trace),
            onestep_steps=onestep_steps,
            newpr_steps=newpr_steps,
            failures=failures + r_failures,
        )


def check_full_simulation_chain_masks(
    instance: LinkReversalInstance,
    pr_trace: Sequence[Tuple[int, ...]],
) -> MaskSimulationChainReport:
    """One-shot convenience wrapper around :class:`MaskSimulationChain`."""
    return MaskSimulationChain(instance).check(pr_trace)
