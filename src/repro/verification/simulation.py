"""The simulation relations of Section 5, as executable checkers.

The paper transfers the acyclicity proof from NewPR back to the original PR
through two binary relations:

* **R′** relates reachable states of PR and OneStepPR: the directed graphs are
  identical and every node's ``list`` is identical (Section 5.2).
* **R** relates reachable states of OneStepPR and NewPR: the directed graphs
  are identical, and ``parity[u] = even`` implies ``list[u] ⊆ out_nbrs(u)``
  while ``parity[u] = odd`` implies ``list[u] ⊆ in_nbrs(u)`` (Section 5.3).

Lemma 5.1 / Lemma 5.3 show how to construct, for every step of the "source"
automaton, a finite sequence of steps of the "target" automaton that restores
the relation:

* a PR action ``reverse(S)`` corresponds to one ``reverse(u)`` of OneStepPR
  per ``u ∈ S`` (in any order);
* a OneStepPR action ``reverse(w)`` corresponds to one NewPR ``reverse(w)``
  when ``list[w] ≠ nbrs(w)``, and to *two* consecutive ``reverse(w)`` steps
  (a dummy step followed by a real one) when ``list[w] = nbrs(w)``.

The checkers below replay a recorded execution of the source automaton,
construct exactly that corresponding execution of the target automaton, and
verify the relation at every correspondence point.  This is the empirical
content of Theorems 5.2, 5.4 and 5.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.automata.executions import Execution
from repro.core.base import Reverse
from repro.core.graph import LinkReversalInstance
from repro.core.new_pr import NewPartialReversal, NewPRState, Parity
from repro.core.one_step_pr import OneStepPartialReversal, OneStepPRState
from repro.core.pr import PartialReversal, PRState, ReverseSet

Node = Hashable


# ----------------------------------------------------------------------
# the relations themselves
# ----------------------------------------------------------------------
class RelationRPrime:
    """The relation R′ between PR states and OneStepPR states (Section 5.2)."""

    def __init__(self, instance: LinkReversalInstance):
        self.instance = instance

    def holds(self, pr_state: PRState, onestep_state: OneStepPRState) -> bool:
        """Whether ``(pr_state, onestep_state) ∈ R′``."""
        return not self.violations(pr_state, onestep_state)

    def violations(self, pr_state: PRState, onestep_state: OneStepPRState) -> List[str]:
        """Human-readable descriptions of every violated condition of R′."""
        problems: List[str] = []
        if pr_state.graph_signature() != onestep_state.graph_signature():
            problems.append("directed graphs differ (condition 1 of R')")
        for u in self.instance.nodes:
            if pr_state.list_of(u) != onestep_state.list_of(u):
                problems.append(
                    f"list[{u}] differs: PR has {sorted(map(str, pr_state.list_of(u)))}, "
                    f"OneStepPR has {sorted(map(str, onestep_state.list_of(u)))} (condition 2 of R')"
                )
        return problems


class RelationR:
    """The relation R between OneStepPR states and NewPR states (Section 5.3)."""

    def __init__(self, instance: LinkReversalInstance):
        self.instance = instance

    def holds(self, onestep_state: OneStepPRState, newpr_state: NewPRState) -> bool:
        """Whether ``(onestep_state, newpr_state) ∈ R``."""
        return not self.violations(onestep_state, newpr_state)

    def violations(self, onestep_state: OneStepPRState, newpr_state: NewPRState) -> List[str]:
        """Human-readable descriptions of every violated condition of R."""
        problems: List[str] = []
        if onestep_state.graph_signature() != newpr_state.graph_signature():
            problems.append("directed graphs differ (condition 1 of R)")
        for u in self.instance.nodes:
            lst = onestep_state.list_of(u)
            parity = newpr_state.parity(u)
            if parity is Parity.EVEN and not lst <= self.instance.out_nbrs(u):
                problems.append(
                    f"parity[{u}] is even but list[{u}]={sorted(map(str, lst))} "
                    "is not a subset of out_nbrs (condition 2 of R)"
                )
            if parity is Parity.ODD and not lst <= self.instance.in_nbrs(u):
                problems.append(
                    f"parity[{u}] is odd but list[{u}]={sorted(map(str, lst))} "
                    "is not a subset of in_nbrs (condition 3 of R)"
                )
        return problems


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class SimulationCheckResult:
    """Outcome of checking a simulation relation along one execution."""

    relation_name: str
    holds: bool
    correspondence_points: int
    failures: List[Tuple[int, str]] = field(default_factory=list)
    corresponding_execution: Optional[Execution] = None

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.holds:
            return (
                f"{self.relation_name}: holds at all {self.correspondence_points} "
                "correspondence points"
            )
        lines = [f"{self.relation_name}: FAILED at {len(self.failures)} point(s)"]
        for index, reason in self.failures[:10]:
            lines.append(f"  source step {index}: {reason}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Lemma 5.1 / Theorem 5.2 — PR simulates OneStepPR via R'
# ----------------------------------------------------------------------
def check_pr_to_onestep_simulation(
    pr_execution: Execution,
    instance: Optional[LinkReversalInstance] = None,
) -> SimulationCheckResult:
    """Replay a PR execution, build the corresponding OneStepPR execution, check R′.

    For each PR action ``reverse(S)`` the corresponding OneStepPR fragment is
    one ``reverse(u)`` per ``u ∈ S`` (Lemma 5.1).  The relation is required to
    hold initially and after every completed fragment.
    """
    if instance is None:
        instance = pr_execution.automaton.instance
    relation = RelationRPrime(instance)
    onestep = OneStepPartialReversal(instance)
    onestep_execution = Execution(onestep, onestep.initial_state())

    failures: List[Tuple[int, str]] = []
    points = 0

    t_state = onestep_execution.final_state
    points += 1
    for problem in relation.violations(pr_execution.initial_state, t_state):
        failures.append((0, f"initial states: {problem}"))

    for step in pr_execution.steps():
        action = step.action
        if isinstance(action, Reverse):
            nodes: Tuple[Node, ...] = (action.node,)
        elif isinstance(action, ReverseSet):
            nodes = action.actors()
        else:  # pragma: no cover - defensive
            failures.append((step.index, f"unexpected action type {type(action).__name__}"))
            continue
        for u in nodes:
            sub_action = Reverse(u)
            if not onestep.is_enabled(t_state, sub_action):
                failures.append(
                    (step.index, f"corresponding OneStepPR action reverse({u}) is not enabled")
                )
                break
            t_state = onestep.apply(t_state, sub_action)
            onestep_execution.append(sub_action, t_state)
        points += 1
        for problem in relation.violations(step.post_state, t_state):
            failures.append((step.index, problem))

    return SimulationCheckResult(
        relation_name="R' (PR -> OneStepPR)",
        holds=not failures,
        correspondence_points=points,
        failures=failures,
        corresponding_execution=onestep_execution,
    )


# ----------------------------------------------------------------------
# Lemma 5.3 / Theorem 5.4 — OneStepPR simulates NewPR via R
# ----------------------------------------------------------------------
def check_onestep_to_newpr_simulation(
    onestep_execution: Execution,
    instance: Optional[LinkReversalInstance] = None,
) -> SimulationCheckResult:
    """Replay a OneStepPR execution, build the corresponding NewPR execution, check R.

    For each OneStepPR action ``reverse(w)`` the corresponding NewPR fragment
    is a single ``reverse(w)`` when ``list[w] ≠ nbrs(w)`` and two consecutive
    ``reverse(w)`` steps otherwise (Lemma 5.3).
    """
    if instance is None:
        instance = onestep_execution.automaton.instance
    relation = RelationR(instance)
    newpr = NewPartialReversal(instance)
    newpr_execution = Execution(newpr, newpr.initial_state())

    failures: List[Tuple[int, str]] = []
    points = 0

    t_state = newpr_execution.final_state
    points += 1
    for problem in relation.violations(onestep_execution.initial_state, t_state):
        failures.append((0, f"initial states: {problem}"))

    for step in onestep_execution.steps():
        action = step.action
        if isinstance(action, ReverseSet):
            if len(action.nodes) != 1:
                failures.append(
                    (step.index, "OneStepPR execution contains a multi-node action")
                )
                continue
            (w,) = tuple(action.nodes)
        elif isinstance(action, Reverse):
            w = action.node
        else:  # pragma: no cover - defensive
            failures.append((step.index, f"unexpected action type {type(action).__name__}"))
            continue

        pre_list = step.pre_state.list_of(w)
        repetitions = 2 if pre_list == instance.nbrs(w) else 1
        ok = True
        for _ in range(repetitions):
            sub_action = Reverse(w)
            if not newpr.is_enabled(t_state, sub_action):
                failures.append(
                    (step.index, f"corresponding NewPR action reverse({w}) is not enabled")
                )
                ok = False
                break
            t_state = newpr.apply(t_state, sub_action)
            newpr_execution.append(sub_action, t_state)
        points += 1
        if ok:
            for problem in relation.violations(step.post_state, t_state):
                failures.append((step.index, problem))

    return SimulationCheckResult(
        relation_name="R (OneStepPR -> NewPR)",
        holds=not failures,
        correspondence_points=points,
        failures=failures,
        corresponding_execution=newpr_execution,
    )


# ----------------------------------------------------------------------
# Theorem 5.5 — the full chain PR -> OneStepPR -> NewPR
# ----------------------------------------------------------------------
@dataclass
class SimulationChainResult:
    """Result of checking R' then R along one PR execution (Theorem 5.5)."""

    r_prime: SimulationCheckResult
    r: SimulationCheckResult

    @property
    def holds(self) -> bool:
        """Whether both relations held at every correspondence point."""
        return self.r_prime.holds and self.r.holds

    def __bool__(self) -> bool:
        return self.holds


def check_full_simulation_chain(pr_execution: Execution) -> SimulationChainResult:
    """Check R′ along a PR execution, then R along the constructed OneStepPR execution.

    This mirrors the proof of Theorem 5.5: every reachable PR state is related
    (via R′ then R) to a reachable NewPR state with the same directed graph,
    so PR inherits NewPR's acyclicity.
    """
    r_prime_result = check_pr_to_onestep_simulation(pr_execution)
    onestep_execution = r_prime_result.corresponding_execution
    if onestep_execution is None:  # pragma: no cover - defensive
        raise RuntimeError("R' check did not produce a corresponding execution")
    r_result = check_onestep_to_newpr_simulation(onestep_execution)
    return SimulationChainResult(r_prime=r_prime_result, r=r_result)
