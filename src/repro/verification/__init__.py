"""Verification of the paper's invariants, theorems and simulation relations.

The paper's results are statements about *every reachable state* of the PR,
OneStepPR and NewPR automata.  This subpackage turns each statement into an
executable check:

* :mod:`repro.verification.invariants` — Invariants 3.1, 3.2 (with
  Corollaries 3.3/3.4), 4.1 and 4.2, each as a function from a state to a
  structured report of violations;
* :mod:`repro.verification.acyclicity` — Theorem 4.3 / Theorem 5.5 (the
  directed graph is acyclic in every reachable state) plus counterexample
  extraction;
* :mod:`repro.verification.simulation` — the binary relations R′
  (PR → OneStepPR) and R (OneStepPR → NewPR) of Section 5, and checkers that
  construct the corresponding executions step by step exactly as Lemmas 5.1
  and 5.3 prescribe;
* :mod:`repro.verification.properties` — derived correctness properties used
  by the applications (destination orientation at quiescence, confluence of
  the final orientation across schedulers, termination bounds).

Checks can be applied to individual states, along recorded executions, or to
the entire reachable state space via :mod:`repro.exploration`.
"""

from repro.verification.invariants import (
    InvariantReport,
    InvariantViolation,
    check_corollary_3_3,
    check_corollary_3_4,
    check_invariant_3_1,
    check_invariant_3_2,
    check_invariant_4_1,
    check_invariant_4_2,
    newpr_invariant_checks,
    pr_invariant_checks,
)
from repro.verification.acyclicity import (
    AcyclicityReport,
    check_acyclic_execution,
    check_acyclic_state,
    is_acyclic,
)
from repro.verification.simulation import (
    RelationR,
    RelationRPrime,
    SimulationCheckResult,
    check_onestep_to_newpr_simulation,
    check_pr_to_onestep_simulation,
    check_full_simulation_chain,
)
from repro.verification.properties import (
    check_confluence,
    check_destination_oriented_at_quiescence,
    check_sinks_are_independent,
)

__all__ = [
    "AcyclicityReport",
    "InvariantReport",
    "InvariantViolation",
    "RelationR",
    "RelationRPrime",
    "SimulationCheckResult",
    "check_acyclic_execution",
    "check_acyclic_state",
    "check_confluence",
    "check_corollary_3_3",
    "check_corollary_3_4",
    "check_destination_oriented_at_quiescence",
    "check_full_simulation_chain",
    "check_invariant_3_1",
    "check_invariant_3_2",
    "check_invariant_4_1",
    "check_invariant_4_2",
    "check_onestep_to_newpr_simulation",
    "check_pr_to_onestep_simulation",
    "check_sinks_are_independent",
    "newpr_invariant_checks",
    "pr_invariant_checks",
]
