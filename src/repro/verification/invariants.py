"""Executable versions of the paper's invariants.

Each ``check_*`` function takes a state (of the appropriate automaton) and
returns an :class:`InvariantReport` listing every violation it found, so that
failures produced by the model checker or by property-based tests carry a
usable counterexample.  ``holds`` is the boolean the tests assert on.

Implemented statements
----------------------

* **Invariant 3.1** (PR / OneStepPR): ``dir[u, v] = in`` iff ``dir[v, u] = out``
  for every edge.
* **Invariant 3.2** (PR / OneStepPR): for every node ``u`` *exactly one* of
  the two structural alternatives about ``list[u]`` holds (see the paper for
  the full statement).
* **Corollary 3.3**: ``list[u] ⊆ in_nbrs(u)`` or ``list[u] ⊆ out_nbrs(u)``.
* **Corollary 3.4**: if ``u`` is a sink then ``list[u] = in_nbrs(u)`` or
  ``list[u] = out_nbrs(u)``.
* **Invariant 4.1** (NewPR): equal parities of neighbours determine the edge
  direction with respect to the left-to-right embedding.
* **Invariant 4.2** (NewPR): the step-count relations (a)–(d) between
  neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.embedding import PlanarEmbedding
from repro.core.graph import EdgeDirection
from repro.core.new_pr import NewPRState, Parity
from repro.core.pr import PRState

Node = Hashable


@dataclass(frozen=True)
class InvariantViolation:
    """A single violation of an invariant, with enough context to debug it."""

    invariant: str
    subject: Tuple[Node, ...]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        subject = ", ".join(map(str, self.subject))
        return f"[{self.invariant}] ({subject}): {self.detail}"


@dataclass
class InvariantReport:
    """Result of checking one invariant on one state."""

    invariant: str
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """Whether the invariant holds (no violations found)."""
        return not self.violations

    def add(self, subject: Tuple[Node, ...], detail: str) -> None:
        """Record one violation."""
        self.violations.append(InvariantViolation(self.invariant, subject, detail))

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.holds:
            return f"{self.invariant}: holds"
        lines = [f"{self.invariant}: {len(self.violations)} violation(s)"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Invariant 3.1
# ----------------------------------------------------------------------
def check_invariant_3_1(state) -> InvariantReport:
    """Invariant 3.1: ``dir[u, v] = in`` iff ``dir[v, u] = out`` for every edge.

    The :class:`~repro.core.graph.Orientation` representation satisfies this
    by construction; the check exists so the claim is verified through the
    same public ``dir`` interface the paper uses, guarding against regressions
    in the representation itself.
    """
    report = InvariantReport("Invariant 3.1")
    instance = state.instance
    for u, v in instance.initial_edges:
        d_uv = state.dir(u, v)
        d_vu = state.dir(v, u)
        if (d_uv is EdgeDirection.IN) != (d_vu is EdgeDirection.OUT):
            report.add((u, v), f"dir[{u},{v}]={d_uv.value} but dir[{v},{u}]={d_vu.value}")
    return report


# ----------------------------------------------------------------------
# Invariant 3.2 and its corollaries
# ----------------------------------------------------------------------
def _part_1_holds(state: PRState, u: Node) -> bool:
    """Part 1 of Invariant 3.2 for node ``u``."""
    instance = state.instance
    out_edges_incoming = all(
        state.dir(u, w) is EdgeDirection.IN for w in instance.out_nbrs(u)
    )
    expected_list = frozenset(
        v for v in instance.in_nbrs(u) if state.dir(u, v) is EdgeDirection.IN
    )
    return out_edges_incoming and state.list_of(u) == expected_list


def _part_2_holds(state: PRState, u: Node) -> bool:
    """Part 2 of Invariant 3.2 for node ``u``."""
    instance = state.instance
    in_edges_incoming = all(
        state.dir(u, w) is EdgeDirection.IN for w in instance.in_nbrs(u)
    )
    expected_list = frozenset(
        v for v in instance.out_nbrs(u) if state.dir(u, v) is EdgeDirection.IN
    )
    return in_edges_incoming and state.list_of(u) == expected_list


def check_invariant_3_2(state: PRState) -> InvariantReport:
    """Invariant 3.2: for every node exactly one of the two list alternatives holds.

    Nodes with no neighbours are skipped: for them both alternatives are
    vacuously true and the paper's graphs (connected, with a destination)
    never contain such nodes.
    """
    report = InvariantReport("Invariant 3.2")
    for u in state.instance.nodes:
        if not state.instance.nbrs(u):
            continue
        part1 = _part_1_holds(state, u)
        part2 = _part_2_holds(state, u)
        if part1 == part2:
            which = "both" if part1 else "neither"
            report.add((u,), f"{which} alternatives of Invariant 3.2 hold (expected exactly one)")
    return report


def check_corollary_3_3(state: PRState) -> InvariantReport:
    """Corollary 3.3: ``list[u]`` is a subset of ``in_nbrs(u)`` or of ``out_nbrs(u)``."""
    report = InvariantReport("Corollary 3.3")
    instance = state.instance
    for u in instance.nodes:
        lst = state.list_of(u)
        if not (lst <= instance.in_nbrs(u) or lst <= instance.out_nbrs(u)):
            report.add(
                (u,),
                f"list[{u}]={sorted(map(str, lst))} is neither a subset of in_nbrs nor of out_nbrs",
            )
    return report


def check_corollary_3_4(state: PRState) -> InvariantReport:
    """Corollary 3.4: if ``u`` is a sink then ``list[u]`` equals ``in_nbrs(u)`` or ``out_nbrs(u)``."""
    report = InvariantReport("Corollary 3.4")
    instance = state.instance
    for u in instance.nodes:
        if u == instance.destination or not state.is_sink(u):
            continue
        lst = state.list_of(u)
        if lst != instance.in_nbrs(u) and lst != instance.out_nbrs(u):
            report.add(
                (u,),
                f"sink {u} has list {sorted(map(str, lst))}, expected in_nbrs or out_nbrs",
            )
    return report


# ----------------------------------------------------------------------
# Invariant 4.1
# ----------------------------------------------------------------------
def check_invariant_4_1(
    state: NewPRState, embedding: Optional[PlanarEmbedding] = None
) -> InvariantReport:
    """Invariant 4.1: equal parities of neighbours fix the edge direction.

    (a) If ``parity[u] = parity[v] = even`` the edge is directed from left to
    right (with respect to the initial left-to-right embedding);
    (b) if both parities are odd it is directed from right to left.
    """
    report = InvariantReport("Invariant 4.1")
    if embedding is None:
        embedding = PlanarEmbedding.from_topological_order(state.instance)
    for u, v in state.instance.initial_edges:
        pu, pv = state.parity(u), state.parity(v)
        if pu is not pv:
            continue
        left_to_right = embedding.edge_goes_left_to_right(state.orientation, u, v)
        if pu is Parity.EVEN and not left_to_right:
            report.add(
                (u, v),
                "both parities even but the edge is directed from right to left",
            )
        if pu is Parity.ODD and left_to_right:
            report.add(
                (u, v),
                "both parities odd but the edge is directed from left to right",
            )
    return report


# ----------------------------------------------------------------------
# Invariant 4.2
# ----------------------------------------------------------------------
def check_invariant_4_2(
    state: NewPRState, embedding: Optional[PlanarEmbedding] = None
) -> InvariantReport:
    """Invariant 4.2: the four step-count relations between neighbours.

    (a) counts of neighbours differ by at most one;
    (b) if ``count[u]`` is odd and ``v`` is to the right of ``u`` then
        ``count[v] = count[u]``;
    (c) if ``count[u]`` is even and ``v`` is to the left of ``u`` then
        ``count[v] = count[u]``;
    (d) if ``count[u] > count[v]`` then the edge is directed from ``u`` to ``v``.
    """
    report = InvariantReport("Invariant 4.2")
    if embedding is None:
        embedding = PlanarEmbedding.from_topological_order(state.instance)
    instance = state.instance
    for u, v in instance.initial_edges:
        cu, cv = state.count(u), state.count(v)

        # (a) — symmetric, check once per edge
        if abs(cu - cv) > 1:
            report.add((u, v), f"counts differ by more than one: count[{u}]={cu}, count[{v}]={cv}")

        # parts (b)-(d) are stated per ordered pair; check both orders
        for x, y, cx, cy in ((u, v, cu, cv), (v, u, cv, cu)):
            if cx % 2 == 1 and embedding.is_right_of(y, x) and cy != cx:
                report.add(
                    (x, y),
                    f"count[{x}]={cx} is odd and {y} is to its right, but count[{y}]={cy}",
                )
            if cx % 2 == 0 and embedding.is_left_of(y, x) and cy != cx:
                report.add(
                    (x, y),
                    f"count[{x}]={cx} is even and {y} is to its left, but count[{y}]={cy}",
                )
            if cx > cy and not state.orientation.points_towards(x, y):
                report.add(
                    (x, y),
                    f"count[{x}]={cx} > count[{y}]={cy} but the edge is not directed {x} -> {y}",
                )
    return report


# ----------------------------------------------------------------------
# Bundles used by the model checker and the benchmarks
# ----------------------------------------------------------------------
def pr_invariant_checks() -> Dict[str, Callable]:
    """All state predicates the paper asserts for PR / OneStepPR states."""
    return {
        "Invariant 3.1": check_invariant_3_1,
        "Invariant 3.2": check_invariant_3_2,
        "Corollary 3.3": check_corollary_3_3,
        "Corollary 3.4": check_corollary_3_4,
    }


def newpr_invariant_checks(
    embedding: Optional[PlanarEmbedding] = None,
) -> Dict[str, Callable]:
    """All state predicates the paper asserts for NewPR states.

    A shared embedding may be supplied so repeated checks along an execution
    do not recompute the topological order every time.
    """
    return {
        "Invariant 3.1": check_invariant_3_1,
        "Invariant 4.1": lambda state: check_invariant_4_1(state, embedding),
        "Invariant 4.2": lambda state: check_invariant_4_2(state, embedding),
    }
