"""Acyclicity checks — the paper's main theorems made executable.

Theorem 4.3 states that every reachable state of NewPR has an acyclic
directed graph; Theorem 5.5 transfers the statement to PR via the simulation
relations.  The checks here apply to *any* state produced by any automaton in
the library (they only look at the orientation component), and they can be
attached to executions or handed to the exhaustive explorer.

A failed check returns the offending cycle so tests and the model checker can
print a concrete counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.automata.executions import Execution
from repro.core.graph import Orientation

Node = Hashable


@dataclass
class AcyclicityReport:
    """Outcome of an acyclicity check over one or more states."""

    states_checked: int = 0
    violations: List[Tuple[int, Tuple[Node, ...]]] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """Whether every checked state was acyclic."""
        return not self.violations

    def add_violation(self, state_index: int, cycle: Tuple[Node, ...]) -> None:
        """Record a cycle found in the state with the given index."""
        self.violations.append((state_index, cycle))

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.holds:
            return f"acyclicity holds on all {self.states_checked} checked state(s)"
        lines = [f"acyclicity violated in {len(self.violations)} of {self.states_checked} state(s)"]
        for index, cycle in self.violations:
            lines.append(f"  state #{index}: cycle {' -> '.join(map(str, cycle))}")
        return "\n".join(lines)


def _orientation_of(state_or_orientation) -> Orientation:
    """Accept either a state (with an ``orientation`` attribute) or an orientation."""
    if isinstance(state_or_orientation, Orientation):
        return state_or_orientation
    orientation = getattr(state_or_orientation, "orientation", None)
    if orientation is not None:
        return orientation
    # height states derive their orientation
    to_orientation = getattr(state_or_orientation, "to_orientation", None)
    if to_orientation is not None:
        return to_orientation()
    raise TypeError(f"cannot extract an orientation from {state_or_orientation!r}")


def is_acyclic(state_or_orientation) -> bool:
    """Whether the directed graph of the given state (or orientation) is a DAG."""
    return _orientation_of(state_or_orientation).is_acyclic()


def find_cycle(state_or_orientation) -> Tuple[Node, ...]:
    """Return a directed cycle of the state's graph, or ``()`` if it is acyclic."""
    return _orientation_of(state_or_orientation).find_cycle()


def check_acyclic_state(state_or_orientation, state_index: int = 0) -> AcyclicityReport:
    """Check a single state; the report carries at most one violation."""
    report = AcyclicityReport(states_checked=1)
    cycle = find_cycle(state_or_orientation)
    if cycle:
        report.add_violation(state_index, cycle)
    return report


def check_acyclic_execution(execution: Execution) -> AcyclicityReport:
    """Check every state of a recorded execution (Theorem 4.3 / 5.5 along a run)."""
    report = AcyclicityReport()
    for index, state in enumerate(execution.states):
        report.states_checked += 1
        cycle = find_cycle(state)
        if cycle:
            report.add_violation(index, cycle)
    return report


class AcyclicityObserver:
    """Per-step observer for :func:`repro.automata.executions.run`.

    Checks the post-state of every transition and accumulates a report, so
    long benchmark runs can verify acyclicity without retaining states.

    Parameters
    ----------
    fail_fast:
        When ``True`` an :class:`AssertionError` is raised at the first cycle,
        which aborts the run immediately (useful inside tests).
    """

    def __init__(self, fail_fast: bool = False):
        self.report = AcyclicityReport()
        self.fail_fast = fail_fast

    def __call__(self, step_index: int, pre_state, action, post_state) -> None:
        self.report.states_checked += 1
        cycle = find_cycle(post_state)
        if cycle:
            self.report.add_violation(step_index + 1, cycle)
            if self.fail_fast:
                raise AssertionError(
                    f"cycle created by step {step_index} ({action!r}): "
                    f"{' -> '.join(map(str, cycle))}"
                )
