"""Derived correctness properties of link-reversal executions.

Beyond the acyclicity invariants, the applications built on link reversal
(routing, leader election, mutual exclusion) rely on a handful of global
properties that the library makes checkable:

* **destination orientation at quiescence** — when no non-destination node is
  a sink, every node has a directed path to the destination (on connected
  graphs whose orientation is a DAG: the only possible sink is then the
  destination, and every maximal directed walk must end in it);
* **confluence** — the final orientation reached from a given initial state is
  the same under every scheduler (link reversal has the diamond property);
* **sink independence** — no two adjacent nodes are ever sinks at the same
  time, which is what makes the concurrent ``reverse(S)`` step of PR
  well defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.automata.executions import Execution, run
from repro.automata.ioa import IOAutomaton

Node = Hashable


@dataclass
class PropertyReport:
    """Generic result of a property check."""

    property_name: str
    holds: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        status = "holds" if self.holds else "FAILED"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"{self.property_name}: {status}{suffix}"


def check_destination_oriented_at_quiescence(
    automaton: IOAutomaton, state
) -> PropertyReport:
    """If ``state`` is quiescent, every node must have a path to the destination.

    For non-quiescent states the property holds vacuously.  The check assumes
    the underlying undirected graph is connected (unreachable components can
    obviously never route to the destination).
    """
    name = "destination-oriented at quiescence"
    if automaton.has_enabled_action(state):
        return PropertyReport(name, True, "state is not quiescent (vacuous)")
    orientation = getattr(state, "orientation", None)
    if orientation is None:
        orientation = state.to_orientation()
    stranded = orientation.nodes_without_path_to_destination()
    if stranded:
        return PropertyReport(
            name,
            False,
            f"quiescent but nodes {sorted(map(str, stranded))} cannot reach the destination",
        )
    return PropertyReport(name, True)


def check_sinks_are_independent(state) -> PropertyReport:
    """No two adjacent nodes are sinks simultaneously.

    This is immediate from the definitions (the shared edge cannot point at
    both endpoints) but the concurrent-step semantics of PR depends on it, so
    it is kept as an explicit regression check.
    """
    name = "sinks are pairwise non-adjacent"
    orientation = getattr(state, "orientation", None)
    if orientation is None:
        orientation = state.to_orientation()
    instance = state.instance
    sinks = set(orientation.sinks(exclude_destination=False))
    for u in sinks:
        overlap = instance.nbrs(u) & sinks
        if overlap:
            return PropertyReport(
                name, False, f"sinks {u} and {sorted(map(str, overlap))[0]} are adjacent"
            )
    return PropertyReport(name, True)


def check_confluence(
    automaton_factory,
    schedulers: Sequence,
    max_steps: Optional[int] = None,
) -> PropertyReport:
    """The final orientation is independent of the scheduler.

    Parameters
    ----------
    automaton_factory:
        A zero-argument callable returning a fresh automaton (each scheduler
        gets its own instance so no state leaks between runs).
    schedulers:
        The schedulers to compare.
    max_steps:
        Optional step bound passed to :func:`repro.automata.executions.run`.

    Link reversal enjoys the diamond property: if two different sinks are both
    enabled, stepping them in either order leads to the same state, so all
    maximal executions end in the same orientation.  This check runs every
    scheduler to quiescence and compares the final directed graphs.
    """
    name = "confluence of the final orientation"
    signatures = []
    for scheduler in schedulers:
        automaton = automaton_factory()
        result = run(automaton, scheduler, max_steps=max_steps, record_states=False)
        if not result.converged:
            return PropertyReport(
                name, False, f"scheduler {scheduler!r} did not converge within the step bound"
            )
        final = result.final_state
        signature = getattr(final, "graph_signature", None)
        signatures.append(signature() if signature is not None else final.signature())
    # graph signatures are compact ints (the orientation's reversal bitmask),
    # directly comparable across automata over the same instance
    distinct = set(signatures)
    if len(distinct) > 1:
        return PropertyReport(name, False, f"{len(distinct)} distinct final orientations observed")
    return PropertyReport(name, True, f"{len(schedulers)} schedulers agree")
