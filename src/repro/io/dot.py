"""Graphviz DOT export of instances and orientations.

Purely textual (no graphviz dependency): the functions return DOT source
strings that can be written to a file and rendered offline.  The destination
node is drawn as a double circle; sinks are highlighted so that stepping
through an execution visually shows the reversal waves.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.graph import LinkReversalInstance, Orientation

Node = Hashable


def _quote(node: Node) -> str:
    """DOT-quote a node identifier."""
    return '"' + str(node).replace('"', r"\"") + '"'


def to_dot(instance: LinkReversalInstance, name: str = "G") -> str:
    """DOT source for the initial orientation of an instance."""
    return orientation_to_dot(instance.initial_orientation(), name=name)


def orientation_to_dot(
    orientation: Orientation,
    name: str = "G",
    highlight_sinks: bool = True,
) -> str:
    """DOT source for an arbitrary orientation.

    Parameters
    ----------
    orientation:
        The orientation to render.
    name:
        Graph name in the DOT output.
    highlight_sinks:
        When set, non-destination sinks are filled grey so that the nodes
        about to take a step stand out.
    """
    instance = orientation.instance
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    sinks = set(orientation.sinks(exclude_destination=True)) if highlight_sinks else set()
    for node in instance.nodes:
        attributes = []
        if node == instance.destination:
            attributes.append("shape=doublecircle")
        else:
            attributes.append("shape=circle")
        if node in sinks:
            attributes.append('style=filled fillcolor="lightgrey"')
        lines.append(f"  {_quote(node)} [{' '.join(attributes)}];")
    for tail, head in orientation.directed_edges():
        lines.append(f"  {_quote(tail)} -> {_quote(head)};")
    lines.append("}")
    return "\n".join(lines)


def render_ascii(orientation: Orientation) -> str:
    """A compact one-line-per-edge textual rendering, for logs and doctests."""
    instance = orientation.instance
    parts = [f"destination={instance.destination}"]
    for tail, head in orientation.directed_edges():
        parts.append(f"{tail}->{head}")
    sinks = orientation.sinks(exclude_destination=True)
    if sinks:
        parts.append(f"sinks={{{', '.join(map(str, sinks))}}}")
    return "  ".join(parts)
