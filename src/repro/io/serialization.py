"""JSON-friendly serialisation of instances and executions.

The benchmark harness stores the instances and traces it generates so that
runs can be reproduced and diffed.  Only built-in types appear in the output
(dicts, lists, strings, ints), so the structures can be dumped with
:mod:`json` directly.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List

from repro.automata.executions import Execution
from repro.core.graph import LinkReversalInstance

Node = Hashable


def instance_to_dict(instance: LinkReversalInstance) -> Dict[str, Any]:
    """Serialise an instance to plain data."""
    return {
        "nodes": list(instance.nodes),
        "destination": instance.destination,
        "initial_edges": [list(edge) for edge in instance.initial_edges],
    }


def instance_from_dict(data: Dict[str, Any]) -> LinkReversalInstance:
    """Rebuild an instance previously produced by :func:`instance_to_dict`."""
    return LinkReversalInstance(
        nodes=tuple(data["nodes"]),
        destination=data["destination"],
        initial_edges=tuple((u, v) for u, v in data["initial_edges"]),
    )


def execution_to_dict(execution: Execution) -> Dict[str, Any]:
    """Serialise an execution to plain data (actions plus endpoint orientations).

    Intermediate states are not serialised — they can be reconstructed by
    replaying the actions with :func:`repro.automata.executions.replay`.
    """
    actions: List[Dict[str, Any]] = []
    for action in execution.actions:
        actions.append({"actors": list(action.actors())})
    return {
        "automaton": execution.automaton.name,
        "instance": instance_to_dict(execution.automaton.instance),
        "actions": actions,
        "initial_edges": [list(edge) for edge in execution.initial_state.directed_edges()],
        "final_edges": [list(edge) for edge in execution.final_state.directed_edges()],
        "length": execution.length,
    }
