"""JSON-friendly serialisation of instances and executions.

The benchmark harness stores the instances and traces it generates so that
runs can be reproduced and diffed.  Only built-in types appear in the output
(dicts, lists, strings, ints), so the structures can be dumped with
:mod:`json` directly.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.automata.executions import Execution, replay
from repro.core.graph import LinkReversalInstance
from repro.distributed.network import NetworkReport

Node = Hashable


class SerializationError(ValueError):
    """Raised when serialised data cannot be rebuilt into a live object."""


# ----------------------------------------------------------------------
# checksummed JSONL lines (result-store shard integrity)
# ----------------------------------------------------------------------
_CRC_SEPARATOR = "\t"
_CRC_DIGITS = 8
_CRC_ALPHABET = set("0123456789abcdef")


def checksummed_line(payload: str) -> str:
    """Append a CRC32 suffix to one JSONL payload: ``<json>\\t<crc32 hex>``.

    The separator is a literal TAB, which cannot appear inside the compact
    JSON payload itself (``json.dumps`` escapes tabs in strings as ``\\t``),
    so :func:`split_checksummed_line` can split unambiguously from the right.
    """
    return payload + _CRC_SEPARATOR + format(zlib.crc32(payload.encode("utf-8")), "08x")


def split_checksummed_line(line: str) -> Tuple[str, Optional[bool]]:
    """Split a shard line into ``(payload, crc_ok)``.

    ``crc_ok`` is ``True``/``False`` for a line carrying a CRC32 suffix, and
    ``None`` for a legacy line written before checksums existed (no TAB, or a
    suffix that is not exactly 8 hex digits — such a tail is treated as part
    of the payload, which for legacy lines it is).
    """
    payload, separator, suffix = line.rpartition(_CRC_SEPARATOR)
    if not separator or len(suffix) != _CRC_DIGITS or not set(suffix) <= _CRC_ALPHABET:
        return line, None
    return payload, format(zlib.crc32(payload.encode("utf-8")), "08x") == suffix


def instance_to_dict(instance: LinkReversalInstance) -> Dict[str, Any]:
    """Serialise an instance to plain data."""
    return {
        "nodes": list(instance.nodes),
        "destination": instance.destination,
        "initial_edges": [list(edge) for edge in instance.initial_edges],
    }


def instance_from_dict(data: Dict[str, Any]) -> LinkReversalInstance:
    """Rebuild an instance previously produced by :func:`instance_to_dict`."""
    return LinkReversalInstance(
        nodes=tuple(data["nodes"]),
        destination=data["destination"],
        initial_edges=tuple((u, v) for u, v in data["initial_edges"]),
    )


def execution_to_dict(execution: Execution) -> Dict[str, Any]:
    """Serialise an execution to plain data (actions plus endpoint orientations).

    Intermediate states are not serialised — they can be reconstructed by
    replaying the actions with :func:`repro.automata.executions.replay`.
    """
    actions: List[Dict[str, Any]] = []
    for action in execution.actions:
        actions.append({"actors": list(action.actors())})
    return {
        "automaton": execution.automaton.name,
        "instance": instance_to_dict(execution.automaton.instance),
        "actions": actions,
        "initial_edges": [list(edge) for edge in execution.initial_state.directed_edges()],
        "final_edges": [list(edge) for edge in execution.final_state.directed_edges()],
        "length": execution.length,
    }


def _automaton_classes() -> Dict[str, Any]:
    """Automaton-name → class registry (lazy to avoid import cycles)."""
    from repro.core.bll import BinaryLinkLabels
    from repro.core.full_reversal import FullReversal
    from repro.core.new_pr import NewPartialReversal
    from repro.core.one_step_pr import OneStepPartialReversal
    from repro.core.pr import PartialReversal

    return {
        "PR": PartialReversal,
        "OneStepPR": OneStepPartialReversal,
        "NewPR": NewPartialReversal,
        "FR": FullReversal,
        "BLL": BinaryLinkLabels,
    }


#: NetworkReport fields and the plain types their values must round-trip as.
_NETWORK_REPORT_FIELDS: Dict[str, type] = {
    "simulated_time": float,
    "events_dispatched": int,
    "messages_sent": int,
    "messages_delivered": int,
    "messages_lost": int,
    "total_reversals": int,
    "destination_oriented": bool,
    "acyclic": bool,
}


def network_report_to_dict(report: NetworkReport) -> Dict[str, Any]:
    """Serialise an asynchronous run's :class:`NetworkReport` to plain data.

    The async twin of :func:`execution_to_dict`: campaign stores and replay
    tooling persist async outcomes with only built-in types.
    """
    return {name: getattr(report, name) for name in _NETWORK_REPORT_FIELDS}


def network_report_from_dict(data: Dict[str, Any]) -> NetworkReport:
    """Rebuild a :class:`NetworkReport` from :func:`network_report_to_dict` output.

    Validates presence and plain-data type of every field (``int`` is
    accepted where ``float`` is expected, as JSON round-trips may narrow
    whole floats) and raises :class:`SerializationError` on malformed input
    rather than returning a silently wrong report.
    """
    kwargs: Dict[str, Any] = {}
    for name, kind in _NETWORK_REPORT_FIELDS.items():
        if name not in data:
            raise SerializationError(f"network report is missing field {name!r}")
        value = data[name]
        if kind is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
            raise SerializationError(
                f"network report field {name!r} must be {kind.__name__}, "
                f"got {type(value).__name__}"
            )
        kwargs[name] = value
    return NetworkReport(**kwargs)


def execution_from_dict(data: Dict[str, Any]) -> Execution:
    """Rebuild an execution previously produced by :func:`execution_to_dict`.

    The inverse is replay-based: the instance and automaton are
    reconstructed, the serialised action trace is re-applied step by step
    (validating every precondition), and the resulting final orientation is
    checked against the serialised ``final_edges``.  A mismatch — a tampered
    trace, or data produced by an incompatible algorithm version — raises
    :class:`SerializationError` rather than returning a silently wrong
    execution.
    """
    from repro.core.base import Reverse
    from repro.core.pr import ReverseSet

    classes = _automaton_classes()
    name = data.get("automaton")
    if name not in classes:
        raise SerializationError(
            f"unknown automaton {name!r}; known: {', '.join(sorted(classes))}"
        )
    instance = instance_from_dict(data["instance"])
    automaton = classes[name](instance)

    actions = []
    for entry in data["actions"]:
        actors = entry["actors"]
        if not actors:
            raise SerializationError("serialised action with no actors")
        if name == "PR":
            # PR's actions are set-valued reverse(S); the JSON list order is
            # irrelevant because the action stores a frozenset
            actions.append(ReverseSet(frozenset(actors)))
        else:
            if len(actors) != 1:
                raise SerializationError(
                    f"automaton {name} takes single-node actions, got {actors!r}"
                )
            actions.append(Reverse(actors[0]))

    execution = replay(automaton, actions)

    expected = {tuple(edge) for edge in data["final_edges"]}
    replayed = {tuple(edge) for edge in execution.final_state.directed_edges()}
    if replayed != expected:
        raise SerializationError(
            "replayed final orientation does not match the serialised final_edges"
        )
    return execution


# ----------------------------------------------------------------------
# telemetry sidecar events (see repro.telemetry.spans for the schema)
# ----------------------------------------------------------------------
#: Required plain-typed fields per telemetry event kind.  ``attrs`` /
#: ``counters`` / ``gauges`` / ``histograms`` are free-form dicts;
#: ``parent_id`` may be ``None`` (root spans) and run metadata fields on
#: ``scenario`` events may be ``None`` (crashed placeholders).
_TELEMETRY_EVENT_FIELDS: Dict[str, Dict[str, type]] = {
    "span": {
        "name": str, "span_id": int, "depth": int,
        "t_start": float, "dur_s": float, "attrs": dict,
    },
    "event": {"name": str, "t": float, "attrs": dict},
    "scenario": {"t": float, "wall_s": float},
    "metrics": {"t": float, "counters": dict, "gauges": dict, "histograms": dict},
}


def telemetry_event_from_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """Validate one parsed ``telemetry.jsonl`` event and return it.

    The sidecar is written by :func:`telemetry_events_to_jsonl` and read back
    through here (``ResultStore.iter_telemetry``), so a schema drift between
    writer and reader fails loudly as a :class:`SerializationError` instead
    of silently feeding ``repro trace`` garbage.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"telemetry event must be an object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    fields = _TELEMETRY_EVENT_FIELDS.get(kind)
    if fields is None:
        known = ", ".join(sorted(_TELEMETRY_EVENT_FIELDS))
        raise SerializationError(
            f"telemetry event has unknown kind {kind!r}; known: {known}"
        )
    for name, kind_type in fields.items():
        if name not in data:
            raise SerializationError(
                f"telemetry {kind} event is missing field {name!r}"
            )
        value = data[name]
        if kind_type is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
            data[name] = value
        if not isinstance(value, kind_type) or (
            kind_type is int and isinstance(value, bool)
        ):
            raise SerializationError(
                f"telemetry {kind} event field {name!r} must be "
                f"{kind_type.__name__}, got {type(value).__name__}"
            )
    if kind == "span":
        parent = data.get("parent_id")
        if parent is not None and (not isinstance(parent, int) or isinstance(parent, bool)):
            raise SerializationError(
                "telemetry span event field 'parent_id' must be int or null"
            )
    return data


def telemetry_events_to_jsonl(events: Sequence[Dict[str, Any]]) -> str:
    """Serialise telemetry events to JSONL text (one compact object per line).

    The write path stays cheap — no validation, the tracer emits only
    schema-conforming events — while :func:`telemetry_event_from_dict`
    validates on read.
    """
    import json

    return "".join(
        json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n"
        for event in events
    )
