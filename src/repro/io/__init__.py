"""Import/export helpers: DOT export, ASCII rendering and JSON serialisation."""

from repro.io.dot import to_dot, orientation_to_dot
from repro.io.serialization import (
    execution_from_dict,
    execution_to_dict,
    instance_from_dict,
    instance_to_dict,
    network_report_from_dict,
    network_report_to_dict,
)

__all__ = [
    "execution_from_dict",
    "execution_to_dict",
    "instance_from_dict",
    "instance_to_dict",
    "network_report_from_dict",
    "network_report_to_dict",
    "orientation_to_dot",
    "to_dot",
]
