"""Shared multiprocessing plumbing.

Both process-based engines — the experiment campaign executor
(:mod:`repro.experiments.executor`) and the sharded model checker
(:mod:`repro.exploration.checker`) — prefer the ``fork`` start method:
worker arguments are inherited rather than pickled, so automata, predicate
bundles (including lambdas) and closures all work.  On spawn-only platforms
(Windows) everything handed to a worker must be picklable.
"""

from __future__ import annotations

import multiprocessing


def fork_preferring_context():
    """The ``fork`` multiprocessing context where available, default otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)
