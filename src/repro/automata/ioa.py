"""I/O automaton abstraction (states, actions, preconditions, effects).

The paper models each algorithm as *one* I/O automaton for the whole system
(Section 3.1): the state holds the ``dir`` variables for every edge plus the
per-node bookkeeping (``list`` for PR/OneStepPR, ``count`` for NewPR), and
there is a single family of internal actions (``reverse``).  An action is
*enabled* in a state when its precondition holds; performing it applies the
effect, producing a new state.

This module defines the abstract interface those automata implement.  The
interface is deliberately pure-functional: :meth:`IOAutomaton.apply` returns a
*new* state and never mutates its argument, so that executions can be
replayed, states can be hashed and deduplicated by the model checker, and
simulation relations can be checked between automata without aliasing bugs.
"""

from __future__ import annotations

import abc
from typing import Generic, Hashable, Iterable, Iterator, Optional, Tuple, TypeVar

StateT = TypeVar("StateT")


class TransitionError(RuntimeError):
    """Raised when an action is applied in a state where it is not enabled."""


class Action(abc.ABC):
    """Base class for automaton actions.

    Concrete actions are small frozen dataclasses (e.g. ``ReverseSet`` or
    ``Reverse``) and must be hashable so that executions and model-checker
    frontiers can store them in sets and dictionaries.
    """

    __slots__ = ()

    @abc.abstractmethod
    def actors(self) -> Tuple[Hashable, ...]:
        """The nodes that take a step in this action.

        For ``reverse(S)`` this is the set ``S``; for ``reverse(u)`` it is
        ``(u,)``.  Used by work counting and by fairness checks.
        """


class IOAutomaton(abc.ABC, Generic[StateT]):
    """Abstract I/O automaton over a state type ``StateT``.

    Subclasses provide the initial state, the enabled-action relation and the
    transition function.  ``StateT`` must expose a ``signature()`` method
    returning a hashable canonical form (used for reachability analysis) and a
    ``copy()`` method; all states in this library follow that protocol.
    """

    #: Human-readable name of the algorithm (used in reports and benchmarks).
    name: str = "automaton"

    # ------------------------------------------------------------------
    # core interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_state(self) -> StateT:
        """Return the unique initial state of the automaton."""

    @abc.abstractmethod
    def enabled_actions(self, state: StateT) -> Iterator[Action]:
        """Yield every action whose precondition holds in ``state``.

        For automata with a set-valued action (PR's ``reverse(S)``), the
        iterator may be exponential in the number of simultaneously enabled
        nodes; callers that only need single-node actions should use
        :meth:`enabled_single_actions` which subclasses may override with a
        cheaper enumeration.
        """

    @abc.abstractmethod
    def is_enabled(self, state: StateT, action: Action) -> bool:
        """Whether ``action``'s precondition holds in ``state``."""

    @abc.abstractmethod
    def apply(self, state: StateT, action: Action) -> StateT:
        """Apply ``action`` to ``state`` and return the successor state.

        Raises :class:`TransitionError` if the action is not enabled.  The
        input state is never mutated.
        """

    # ------------------------------------------------------------------
    # conveniences shared by all link-reversal automata
    # ------------------------------------------------------------------
    def enabled_single_actions(self, state: StateT) -> Iterator[Action]:
        """Yield only the actions in which a single node takes a step.

        The default implementation filters :meth:`enabled_actions`; automata
        with set-valued actions override this to avoid enumerating subsets.
        """
        for action in self.enabled_actions(state):
            if len(action.actors()) == 1:
                yield action

    def has_enabled_action(self, state: StateT) -> bool:
        """Whether any action is enabled in ``state`` (i.e. it is not quiescent)."""
        return next(iter(self.enabled_actions(state)), None) is not None

    def is_quiescent(self, state: StateT) -> bool:
        """Whether no action is enabled in ``state``.

        For the link-reversal automata quiescence means no non-destination
        node is a sink, which (for connected graphs with a DAG orientation)
        coincides with the graph being destination oriented.
        """
        return not self.has_enabled_action(state)

    def step(self, state: StateT, action: Action) -> StateT:
        """Alias for :meth:`apply` (reads better in example scripts)."""
        return self.apply(state, action)

    def run_to_quiescence(
        self, scheduler, max_steps: Optional[int] = None
    ):
        """Convenience wrapper around :func:`repro.automata.executions.run`."""
        from repro.automata.executions import run

        return run(self, scheduler, max_steps=max_steps)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"<{type(self).__name__} name={self.name!r}>"
