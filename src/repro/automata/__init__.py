"""A small I/O-automaton framework (after Lynch, *Distributed Algorithms*).

The paper expresses every algorithm as a single I/O automaton with one family
of actions (``reverse``).  This subpackage provides the minimal machinery
needed to express those automata faithfully and to reason about their
executions:

* :class:`~repro.automata.ioa.IOAutomaton` — states, actions, preconditions
  and effects;
* :class:`~repro.automata.executions.Execution` — alternating sequences of
  states and actions, with helpers for replay and validation;
* :func:`~repro.automata.executions.run` — drive an automaton with a
  scheduler until quiescence (or a step bound).
"""

from repro.automata.ioa import Action, IOAutomaton, TransitionError
from repro.automata.executions import Execution, ExecutionResult, Step, run, replay

__all__ = [
    "Action",
    "Execution",
    "ExecutionResult",
    "IOAutomaton",
    "Step",
    "TransitionError",
    "replay",
    "run",
]
