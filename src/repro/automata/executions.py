"""Executions of I/O automata: alternating state/action sequences.

An *execution* of an automaton is a finite alternating sequence
``s_0, a_1, s_1, a_2, s_2, ...`` where ``s_0`` is the initial state, every
``a_i`` is enabled in ``s_{i-1}``, and ``s_i`` is the result of applying
``a_i`` to ``s_{i-1}``.  This module provides:

* :class:`Step` / :class:`Execution` — the recorded sequence, with validation
  and replay helpers used heavily by the verification layer;
* :func:`run` — drive an automaton with a :class:`~repro.schedulers.base.Scheduler`
  until quiescence or a step bound, optionally invoking per-step observers
  (this is how invariants are checked *along* executions);
* :class:`ExecutionResult` — what :func:`run` returns (execution, convergence
  flag, and step statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.automata.ioa import Action, IOAutomaton, TransitionError

StateT = TypeVar("StateT")

#: Signature of a per-step observer: ``observer(step_index, pre_state, action, post_state)``.
Observer = Callable[[int, object, Action, object], None]


@dataclass(frozen=True)
class Step(Generic[StateT]):
    """A single transition ``(pre_state, action, post_state)`` of an execution."""

    index: int
    pre_state: StateT
    action: Action
    post_state: StateT


class Execution(Generic[StateT]):
    """A recorded finite execution of an automaton.

    The execution stores every intermediate state, which is what the paper's
    invariants quantify over ("in every reachable state ...").  States are the
    immutable snapshots returned by the automaton, so holding them is safe.
    """

    def __init__(self, automaton: IOAutomaton, initial_state: StateT):
        self.automaton = automaton
        self._states: List[StateT] = [initial_state]
        self._actions: List[Action] = []

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def append(self, action: Action, post_state: StateT) -> None:
        """Record one transition.  The action is assumed already applied."""
        self._actions.append(action)
        self._states.append(post_state)

    def extend_by_applying(self, actions: Iterable[Action]) -> None:
        """Apply each action in turn (validating enabledness) and record it."""
        for action in actions:
            current = self.final_state
            if not self.automaton.is_enabled(current, action):
                raise TransitionError(
                    f"action {action!r} is not enabled in state #{len(self._actions)}"
                )
            self.append(action, self.automaton.apply(current, action))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def initial_state(self) -> StateT:
        """The first state ``s_0``."""
        return self._states[0]

    @property
    def final_state(self) -> StateT:
        """The last state of the execution."""
        return self._states[-1]

    @property
    def states(self) -> Tuple[StateT, ...]:
        """All states ``s_0 .. s_k`` in order."""
        return tuple(self._states)

    @property
    def actions(self) -> Tuple[Action, ...]:
        """All actions ``a_1 .. a_k`` in order (the *trace* of the execution)."""
        return tuple(self._actions)

    @property
    def length(self) -> int:
        """Number of transitions taken."""
        return len(self._actions)

    def steps(self) -> Iterator[Step[StateT]]:
        """Iterate over the transitions as :class:`Step` records."""
        for i, action in enumerate(self._actions):
            yield Step(i, self._states[i], action, self._states[i + 1])

    def state_at(self, index: int) -> StateT:
        """The state after ``index`` transitions (``state_at(0)`` is initial)."""
        return self._states[index]

    # ------------------------------------------------------------------
    # validation / checks
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check that every recorded transition is legal.

        Raises :class:`TransitionError` on the first violation.  Used by tests
        to make sure schedulers and the distributed layer only ever produce
        legitimate executions.
        """
        for step in self.steps():
            if not self.automaton.is_enabled(step.pre_state, step.action):
                raise TransitionError(
                    f"step {step.index}: action {step.action!r} not enabled"
                )
            recomputed = self.automaton.apply(step.pre_state, step.action)
            if recomputed.signature() != step.post_state.signature():
                raise TransitionError(
                    f"step {step.index}: recorded post-state does not match transition function"
                )

    def check_state_property(self, predicate: Callable[[StateT], bool]) -> Optional[int]:
        """Return the index of the first state violating ``predicate``, or ``None``."""
        for i, state in enumerate(self._states):
            if not predicate(state):
                return i
        return None

    def __len__(self) -> int:
        return len(self._actions)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"<Execution of {self.automaton.name}: {self.length} steps>"


@dataclass
class ExecutionResult(Generic[StateT]):
    """Outcome of :func:`run`.

    Attributes
    ----------
    execution:
        The full recorded execution.
    converged:
        ``True`` if the run stopped because no action was enabled (quiescence),
        ``False`` if it stopped because the step bound was hit.
    steps_taken:
        Number of transitions performed.
    """

    execution: Execution[StateT]
    converged: bool
    steps_taken: int

    @property
    def final_state(self) -> StateT:
        """The last state reached."""
        return self.execution.final_state

    @property
    def initial_state(self) -> StateT:
        """The initial state of the run."""
        return self.execution.initial_state


#: Default cap on execution length; generous enough for the worst-case
#: Θ(n_b²) executions studied in the benchmarks, while guaranteeing
#: termination of :func:`run` even for misbehaving custom automata.
DEFAULT_MAX_STEPS = 1_000_000


def run(
    automaton: IOAutomaton,
    scheduler,
    max_steps: Optional[int] = None,
    initial_state: Optional[StateT] = None,
    observers: Sequence[Observer] = (),
    record_states: bool = True,
) -> ExecutionResult:
    """Drive ``automaton`` with ``scheduler`` until quiescence or ``max_steps``.

    Parameters
    ----------
    automaton:
        Any :class:`~repro.automata.ioa.IOAutomaton`.
    scheduler:
        A :class:`~repro.schedulers.base.Scheduler`; it is asked to pick one of
        the enabled actions at every step (the adversary of the paper's model).
    max_steps:
        Upper bound on transitions (defaults to :data:`DEFAULT_MAX_STEPS`).
    initial_state:
        Start from this state instead of the automaton's initial state (used
        when resuming after a topology change in the routing layer).
    observers:
        Callables invoked after every transition with
        ``(step_index, pre_state, action, post_state)``.  Invariant checking
        along executions is implemented as an observer.
    record_states:
        When ``False``, intermediate states are not retained (the execution
        will contain only the initial and final state); use for very long
        benchmark runs where memory matters.  Step observers still see every
        intermediate state.

    Returns
    -------
    ExecutionResult
    """
    if max_steps is None:
        max_steps = DEFAULT_MAX_STEPS

    state = automaton.initial_state() if initial_state is None else initial_state
    execution = Execution(automaton, state)
    scheduler.reset(automaton)

    # hoisted so the hot loop never iterates an empty dispatch list: a run
    # without observers pays no per-step dispatch cost at all
    dispatch_observers = bool(observers)

    steps = 0
    converged = False
    while steps < max_steps:
        action = scheduler.select(automaton, state)
        if action is None:
            converged = True
            break
        if not automaton.is_enabled(state, action):
            raise TransitionError(
                f"scheduler {scheduler!r} selected disabled action {action!r}"
            )
        next_state = automaton.apply(state, action)
        if dispatch_observers:
            for observer in observers:
                observer(steps, state, action, next_state)
        if record_states:
            execution.append(action, next_state)
        else:
            # keep only the endpoints: rewrite the single-state suffix
            execution._actions.append(action)
            if len(execution._states) > 1:
                execution._states[-1] = next_state
            else:
                execution._states.append(next_state)
        state = next_state
        steps += 1
    else:
        # step bound reached without the scheduler declaring quiescence
        converged = not automaton.has_enabled_action(state)

    return ExecutionResult(execution=execution, converged=converged, steps_taken=steps)


def replay(
    automaton: IOAutomaton,
    actions: Sequence[Action],
    initial_state: Optional[StateT] = None,
) -> Execution:
    """Replay an explicit action sequence on ``automaton`` and return the execution.

    Every action is validated against its precondition; this is how the
    simulation-relation checker constructs the corresponding executions of
    OneStepPR and NewPR from a PR trace.
    """
    state = automaton.initial_state() if initial_state is None else initial_state
    execution = Execution(automaton, state)
    execution.extend_by_applying(actions)
    return execution
