"""Couples the packet simulator to a live link-reversal control plane.

:class:`DataPlaneRun` owns a :class:`~repro.distributed.fast_network.
FastAsyncNetwork` (the control plane: height messages, reversals, churn)
and a :class:`~repro.dataplane.packets.PacketSimulator` (the data plane:
per-link ring buffers), and keeps the simulator's ``next_hop_link`` table
consistent with the network's packed heights *incrementally*:

* after every control-plane advance it diffs the live height list against a
  cached copy (skipped entirely when no events were dispatched, so a
  quiescent network costs O(1) per slot) and re-derives next hops only for
  the changed nodes and their neighbours;
* a link failure flushes the two directed queues, removes the link from
  both endpoints' candidate sets (the network already did) and re-patches
  the two endpoints plus their neighbourhoods.

The forwarding rule is greedy height descent: a node's next hop is its
lowest-height neighbour, provided that neighbour is lower than itself.
Packed heights are totally ordered (node rank is embedded), so the choice
is deterministic and, on a quiescent destination-oriented DAG, loop-free.
During reversal cascades the table is transiently inconsistent on purpose —
that window is exactly what the transient-loop counter and TTL expiry
measure.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.graph import LinkReversalInstance
from repro.dataplane.packets import PacketSimulator
from repro.dataplane.traffic import TrafficModel, resolve_traffic
from repro.distributed.fast_network import FastAsyncNetwork
from repro.distributed.network import DELAY_MODELS
from repro.distributed.protocol import ReversalMode
from repro.kernels.simulator import DeadlineExceeded
from repro.routing.dag_routing import undirected_distances

Node = object

#: Control-plane simulated time advanced per data-plane slot.  With the
#: default delay models (unit-ish delays) one slot lets roughly one message
#: hop land per link, so reversal cascades and packets genuinely interleave.
SLOT_DT = 1.0

#: How often (in slots) a lossy, stalled, unoriented network re-broadcasts
#: heights so dropped updates cannot wedge the control plane forever.
BEACON_EVERY_SLOTS = 32


class DataPlaneRun:
    """A packet workload riding a (possibly churning) link-reversal network."""

    def __init__(
        self,
        instance: LinkReversalInstance,
        *,
        mode: ReversalMode = ReversalMode.PARTIAL,
        traffic: "TrafficModel | str" = "steady",
        delay_model: str = "fixed",
        loss: float = 0.0,
        channel_seed: int = 0,
        traffic_seed: int = 0,
        queue_capacity: int = 64,
        link_capacity: int = 1,
        ttl: Optional[int] = None,
        slot_dt: float = SLOT_DT,
    ):
        if isinstance(traffic, str):
            traffic = resolve_traffic(traffic)
        self.traffic = traffic
        min_delay, max_delay, fifo = DELAY_MODELS[delay_model]
        self.network = FastAsyncNetwork(
            instance,
            mode=mode,
            min_delay=min_delay,
            max_delay=max_delay,
            loss_probability=loss,
            seed=channel_seed,
            fifo=fifo,
        )
        self.instance = instance
        self.loss = loss
        self.slot_dt = slot_dt
        n = instance.node_count
        dest = self.network.destination_id

        # Both directions of every initial undirected link get a queue; the
        # link set only shrinks under failure churn, so ids stay stable.
        link_from: List[int] = []
        link_to: List[int] = []
        self._link_id: Dict[Tuple[int, int], int] = {}
        for lo, hi in self.network.sorted_link_id_pairs():
            for u, v in ((lo, hi), (hi, lo)):
                self._link_id[(u, v)] = len(link_from)
                link_from.append(u)
                link_to.append(v)

        distances = undirected_distances(instance)
        dist = [distances.get(u, -1) for u in instance.nodes]

        if ttl is None:
            # Generous backstop: transient loops should bounce packets, not
            # strand them, but a packet must still die well before a full
            # campaign's slot budget.
            ttl = max(16, 4 * n)
        # TrafficModel.rate is a multiple of the sink cut (see traffic.py);
        # convert to a per-node Poisson mean against the destination's
        # current delivery capacity.
        sink_capacity = len(self.network.neighbour_ids(dest)) * link_capacity
        per_node = traffic.rate * sink_capacity / max(1, n - 1)
        self.sim = PacketSimulator(
            link_from,
            link_to,
            n_nodes=n,
            destination=dest,
            rates=[per_node] * n,
            undirected_distance=dist,
            queue_capacity=queue_capacity,
            link_capacity=link_capacity,
            ttl=ttl,
            burst_on=traffic.burst_on,
            seed=traffic_seed,
        )

        self._heights = list(self.network.packed_heights())
        self._events_seen = self.network.events_dispatched
        self.repatched_nodes = 0
        self.patch_rounds = 0
        self.slots_run = 0
        self._patch_nodes(range(n))

    # ------------------------------------------------------------------
    # next-hop patching
    # ------------------------------------------------------------------
    def _next_hop_of(self, u: int) -> int:
        if u == self.network.destination_id:
            return -1
        heights = self._heights
        own = heights[u]
        best = -1
        best_height = own
        for j in self.network.neighbour_ids(u):
            hj = heights[j]
            if hj < best_height:
                best = j
                best_height = hj
        return best

    def _patch_nodes(self, nodes: Iterable[int]) -> None:
        sim = self.sim
        link_id = self._link_id
        count = 0
        for u in nodes:
            v = self._next_hop_of(u)
            lid = link_id.get((u, v), -1) if v >= 0 else -1
            sim.set_next_hop_link(u, lid)
            count += 1
        self.repatched_nodes += count
        self.patch_rounds += 1

    def _advance_control(self, deadline: Optional[float]) -> None:
        network = self.network
        network.run_for(self.slot_dt, deadline=deadline)
        if network.events_dispatched == self._events_seen:
            return
        self._events_seen = network.events_dispatched
        live = network.packed_heights()
        cached = self._heights
        changed = [i for i in range(len(cached)) if live[i] != cached[i]]
        if not changed:
            return
        affected = set(changed)
        for i in changed:
            cached[i] = live[i]
            affected |= network.neighbour_ids(i)
        self._patch_nodes(affected)

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def fail_link(self, u: Node, v: Node) -> None:
        """Fail undirected link ``{u, v}``: flush queues, repatch endpoints."""
        network = self.network
        network.fail_link(u, v)
        iu = self.instance.node_index(u)
        iv = self.instance.node_index(v)
        self.sim.kill_links([self._link_id[(iu, iv)], self._link_id[(iv, iu)]])
        affected = {iu, iv}
        affected |= network.neighbour_ids(iu)
        affected |= network.neighbour_ids(iv)
        self._patch_nodes(affected)

    # ------------------------------------------------------------------
    # slot loop
    # ------------------------------------------------------------------
    def step_slot(self, inject: bool = True, deadline: Optional[float] = None) -> None:
        """Advance control plane by one slot, then inject and transmit."""
        self._advance_control(deadline)
        network = self.network
        if (
            self.loss > 0
            and self.slots_run % BEACON_EVERY_SLOTS == 0
            and network.quiescent()
            and not network.is_destination_oriented()
        ):
            # Loss can eat the height updates that would have restored
            # orientation; a beacon re-announces every height (processed by
            # the next slot's control advance).
            network.broadcast_heights()
            network.beacon_rounds += 1
        if inject:
            self.sim.inject_slot()
        self.sim.step()
        self.slots_run += 1

    def run(
        self,
        slots: int,
        drain_slots: int = 0,
        deadline: Optional[float] = None,
        failure_plan: Optional[Dict[int, int]] = None,
        fail_hook=None,
    ) -> None:
        """Inject for ``slots`` slots, then drain without injection.

        ``failure_plan`` maps slot index -> number of link failures to apply
        just before that slot; ``fail_hook(count)`` performs them (the engine
        supplies seeded candidate selection + partition checks).  Raises
        :class:`~repro.kernels.simulator.DeadlineExceeded` between slots when
        the wall-clock ``deadline`` passes; all tallies remain consistent.
        """
        for slot in range(slots):
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceeded(f"deadline exceeded at slot {slot}")
            if failure_plan and fail_hook is not None:
                count = failure_plan.get(slot, 0)
                if count:
                    fail_hook(count)
            self.step_slot(inject=True, deadline=deadline)
        for _ in range(drain_slots):
            if self.sim.in_flight == 0:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceeded("deadline exceeded during drain")
            self.step_slot(inject=False, deadline=deadline)
