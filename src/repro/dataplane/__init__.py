"""Packet-level data plane over the routed DAG.

The control plane (link reversal) keeps a destination-oriented DAG alive
under churn; this package moves *payload* over it: structure-of-arrays
ring buffers per directed link, slotted capacity, FIFO queues, tail drops,
TTL expiry and transient-loop accounting, with next-hop tables patched
incrementally as reversals rewrite the DAG underneath.
"""

from repro.dataplane.packets import PacketSimulator, numpy_available
from repro.dataplane.run import DataPlaneRun, SLOT_DT
from repro.dataplane.traffic import (
    TRAFFIC_MODEL_NAMES,
    TRAFFIC_MODELS,
    TrafficModel,
    resolve_traffic,
)

__all__ = [
    "DataPlaneRun",
    "PacketSimulator",
    "SLOT_DT",
    "TRAFFIC_MODELS",
    "TRAFFIC_MODEL_NAMES",
    "TrafficModel",
    "numpy_available",
    "resolve_traffic",
]
