"""Structure-of-arrays packet simulator: per-link ring buffers, no objects.

Every directed link owns a fixed-capacity FIFO ring buffer; a packet is a
*row slice* across four parallel ``(links, capacity)`` arrays (injecting
source, remaining TTL, birth slot, hops so far) — never a Python object.
One simulated slot transmits up to ``link_capacity`` packets from the head
of every live queue, delivers arrivals at the destination, decrements TTLs,
and re-enqueues the rest on their receiver's current next-hop link, all as
vectorised numpy batch operations.  A million packets per run is the design
point (see ``benchmarks/bench_dataplane.py``).

The simulator knows nothing about link reversal: forwarding reads a plain
``next_hop_link`` array that the owner (:class:`~repro.dataplane.run.
DataPlaneRun`) patches incrementally as the control plane rewrites the DAG.
That separation is what lets reversals, failures and packets interleave
mid-run while the conservation invariant

    injected == delivered + dropped + in_flight

holds after every slot, with ``dropped`` split by cause (queue-tail
overflow, TTL expiry, no current route, link failure flush).
"""

from __future__ import annotations

from typing import Dict, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    np = None


def numpy_available() -> bool:
    """Whether the array backend is importable (gates the dataplane engine)."""
    return np is not None


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - numpy is a baked-in dependency
        raise ImportError("the packet data plane requires numpy")


class PacketSimulator:
    """Slotted packet forwarding over per-directed-link ring buffers.

    Parameters
    ----------
    link_from, link_to:
        Parallel sequences defining the directed links by node id.
    n_nodes, destination:
        Node-id space and the (single) traffic sink.
    rates:
        Mean Poisson arrivals per node per slot (destination forced to 0).
    undirected_distance:
        Per-node undirected hop distance to the destination (``-1`` =
        unreachable); used for per-packet stretch at delivery time.
    queue_capacity:
        Ring-buffer depth per directed link; arrivals beyond it tail-drop.
    link_capacity:
        Packets transmitted per link per slot.
    ttl:
        Initial per-packet TTL in hops; expiry drops count separately so
        transient routing loops are visible even when packets escape them.
    burst_on:
        Per-slot Bernoulli gate probability for bursty arrivals (1.0 =
        always on); while on, nodes inject at ``rate / burst_on``.
    """

    def __init__(
        self,
        link_from: Sequence[int],
        link_to: Sequence[int],
        n_nodes: int,
        destination: int,
        rates: Sequence[float],
        undirected_distance: Sequence[int],
        queue_capacity: int = 64,
        link_capacity: int = 1,
        ttl: int = 64,
        burst_on: float = 1.0,
        seed: int = 0,
    ):
        _require_numpy()
        if queue_capacity <= 0 or link_capacity <= 0 or ttl <= 0:
            raise ValueError("queue_capacity, link_capacity and ttl must be positive")
        self.link_from = np.asarray(link_from, dtype=np.int64)
        self.link_to = np.asarray(link_to, dtype=np.int64)
        self.n_links = int(self.link_from.shape[0])
        self.n_nodes = int(n_nodes)
        self.destination = int(destination)
        self.queue_capacity = int(queue_capacity)
        self.link_capacity = int(link_capacity)
        self.ttl = int(ttl)
        self.burst_on = float(burst_on)

        rates = np.asarray(rates, dtype=np.float64).copy()
        rates[self.destination] = 0.0
        self._rates = rates
        self._on_rates = rates / self.burst_on
        self._dist = np.asarray(undirected_distance, dtype=np.int64)
        self._rng = np.random.default_rng(seed)

        shape = (self.n_links, self.queue_capacity)
        self.q_src = np.zeros(shape, dtype=np.int64)
        self.q_ttl = np.zeros(shape, dtype=np.int64)
        self.q_birth = np.zeros(shape, dtype=np.int64)
        self.q_hops = np.zeros(shape, dtype=np.int64)
        self.q_head = np.zeros(self.n_links, dtype=np.int64)
        self.q_len = np.zeros(self.n_links, dtype=np.int64)
        self.link_alive = np.ones(self.n_links, dtype=bool)
        #: per node: directed link id of the current next hop, -1 when the
        #: node has no downhill neighbour.  Patched by the owner, read here.
        self.next_hop_link = np.full(self.n_nodes, -1, dtype=np.int64)

        self.now = 0
        self.injected = 0
        self.delivered = 0
        self.forwarded = 0
        self.drop_tail = 0
        self.drop_ttl = 0
        self.drop_no_route = 0
        self.drop_link_down = 0
        self.loop_bounces = 0
        self.peak_queue_depth = 0
        self.latency_total = 0.0
        self.latency_min = float("inf")
        self.latency_max = float("-inf")
        self.hops_total = 0
        self.stretch_total = 0.0
        self.stretch_count = 0

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Packets currently queued on some link."""
        return int(self.q_len.sum())

    @property
    def dropped_total(self) -> int:
        """All drops across causes."""
        return (
            self.drop_tail + self.drop_ttl + self.drop_no_route + self.drop_link_down
        )

    def conservation_ok(self) -> bool:
        """``injected == delivered + dropped + in_flight`` — must always hold."""
        return self.injected == self.delivered + self.dropped_total + self.in_flight

    # ------------------------------------------------------------------
    def set_next_hop_link(self, node: int, link_id: int) -> None:
        """Point ``node``'s forwarding at directed link ``link_id`` (-1 = none)."""
        self.next_hop_link[node] = link_id

    def kill_links(self, link_ids: Sequence[int]) -> int:
        """Mark directed links dead and flush their queues as failure drops."""
        ids = np.asarray(link_ids, dtype=np.int64)
        ids = ids[self.link_alive[ids]]
        if not ids.size:
            return 0
        flushed = int(self.q_len[ids].sum())
        self.drop_link_down += flushed
        self.q_len[ids] = 0
        self.q_head[ids] = 0
        self.link_alive[ids] = False
        return flushed

    # ------------------------------------------------------------------
    def inject_slot(self) -> int:
        """Draw this slot's Poisson arrivals and enqueue them at their sources."""
        if self.burst_on < 1.0:
            gate = self._rng.random(self.n_nodes) < self.burst_on
            lam = np.where(gate, self._on_rates, 0.0)
        else:
            lam = self._rates
        counts = self._rng.poisson(lam)
        total = int(counts.sum())
        if total == 0:
            return 0
        self.injected += total
        sources = np.repeat(np.arange(self.n_nodes, dtype=np.int64), counts)
        links = self.next_hop_link[sources]
        routed = links >= 0
        unrouted = total - int(routed.sum())
        if unrouted:
            self.drop_no_route += unrouted
        if routed.any():
            k = int(routed.sum())
            self._enqueue(
                links[routed],
                sources[routed],
                np.full(k, self.ttl, dtype=np.int64),
                np.full(k, self.now, dtype=np.int64),
                np.zeros(k, dtype=np.int64),
            )
        return total

    def step(self) -> int:
        """One slot: transmit up to ``link_capacity`` per link, process arrivals.

        Returns the number of packets transmitted this slot.
        """
        k = np.minimum(self.q_len, self.link_capacity)
        active = np.flatnonzero(k)
        sent = 0
        if active.size:
            k_active = k[active]
            parts_l = []
            parts_s = []
            for c in range(int(k_active.max())):
                lids = active[k_active > c]
                parts_l.append(lids)
                parts_s.append((self.q_head[lids] + c) % self.queue_capacity)
            l_all = np.concatenate(parts_l)
            s_all = np.concatenate(parts_s)
            self.q_head[active] = (self.q_head[active] + k_active) % self.queue_capacity
            self.q_len[active] -= k_active
            sent = int(l_all.size)
            self.forwarded += sent
            self._arrivals(l_all, s_all)
        self.now += 1
        if self.n_links:
            depth = int(self.q_len.max())
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
        return sent

    # ------------------------------------------------------------------
    def _arrivals(self, l_all, s_all) -> None:
        node = self.link_to[l_all]
        prev = self.link_from[l_all]
        src = self.q_src[l_all, s_all]
        ttl = self.q_ttl[l_all, s_all] - 1
        birth = self.q_birth[l_all, s_all]
        hops = self.q_hops[l_all, s_all] + 1

        at_dest = node == self.destination
        n_delivered = int(at_dest.sum())
        if n_delivered:
            self.delivered += n_delivered
            latency = self.now - birth[at_dest] + 1
            self.latency_total += float(latency.sum())
            lat_min = float(latency.min())
            lat_max = float(latency.max())
            if lat_min < self.latency_min:
                self.latency_min = lat_min
            if lat_max > self.latency_max:
                self.latency_max = lat_max
            delivered_hops = hops[at_dest]
            self.hops_total += int(delivered_hops.sum())
            dist = self._dist[src[at_dest]]
            valid = dist > 0
            n_valid = int(valid.sum())
            if n_valid:
                self.stretch_total += float(
                    (delivered_hops[valid] / dist[valid]).sum()
                )
                self.stretch_count += n_valid

        onward = ~at_dest
        expired = onward & (ttl <= 0)
        n_expired = int(expired.sum())
        if n_expired:
            self.drop_ttl += n_expired
        live = onward & (ttl > 0)
        if live.any():
            next_links = self.next_hop_link[node[live]]
            routed = next_links >= 0
            n_unrouted = int((~routed).sum())
            if n_unrouted:
                self.drop_no_route += n_unrouted
            if routed.any():
                fwd_links = next_links[routed]
                # A forward straight back over the link it arrived on means
                # the DAG flipped under the packet mid-cascade: count it as
                # a transient-loop bounce (the TTL is the escape hatch).
                bounced = self.link_to[fwd_links] == prev[live][routed]
                self.loop_bounces += int(bounced.sum())
                self._enqueue(
                    fwd_links,
                    src[live][routed],
                    ttl[live][routed],
                    birth[live][routed],
                    hops[live][routed],
                )

    def _enqueue(self, links, src, ttl, birth, hops) -> None:
        alive = self.link_alive[links]
        if not alive.all():
            dead = int((~alive).sum())
            self.drop_link_down += dead
            links = links[alive]
            src = src[alive]
            ttl = ttl[alive]
            birth = birth[alive]
            hops = hops[alive]
            if not links.size:
                return
        order = np.argsort(links, kind="stable")
        links = links[order]
        uniq, start, counts = np.unique(links, return_index=True, return_counts=True)
        rank = np.arange(links.size, dtype=np.int64) - np.repeat(start, counts)
        space = self.queue_capacity - self.q_len[links]
        accept = rank < space
        n_dropped = int(links.size - accept.sum())
        if n_dropped:
            self.drop_tail += n_dropped
        if not accept.any():
            return
        links_a = links[accept]
        slots = (
            self.q_head[links_a] + self.q_len[links_a] + rank[accept]
        ) % self.queue_capacity
        src_o = src[order][accept]
        self.q_src[links_a, slots] = src_o
        self.q_ttl[links_a, slots] = ttl[order][accept]
        self.q_birth[links_a, slots] = birth[order][accept]
        self.q_hops[links_a, slots] = hops[order][accept]
        self.q_len[uniq] += np.minimum(counts, self.queue_capacity - self.q_len[uniq])

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, object]:
        """Cumulative tallies plus derived latency/stretch summaries."""
        delivered = self.delivered
        return {
            "slots": self.now,
            "packets_injected": self.injected,
            "packets_delivered": delivered,
            "packets_dropped": self.dropped_total,
            "packets_in_flight": self.in_flight,
            "packets_forwarded": self.forwarded,
            "drop_tail": self.drop_tail,
            "drop_ttl": self.drop_ttl,
            "drop_no_route": self.drop_no_route,
            "drop_link_down": self.drop_link_down,
            "transient_loops": self.loop_bounces,
            "peak_queue_depth": self.peak_queue_depth,
            "mean_latency_slots": (
                self.latency_total / delivered if delivered else None
            ),
            "max_latency_slots": (
                self.latency_max if delivered else None
            ),
            "mean_hops": (self.hops_total / delivered if delivered else None),
            "mean_stretch": (
                self.stretch_total / self.stretch_count
                if self.stretch_count
                else None
            ),
        }
