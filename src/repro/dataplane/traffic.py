"""Seeded flow-arrival models for the packet data plane.

A traffic model describes how many packets each non-destination node injects
per slot.  Arrivals are Poisson with a per-node mean rate; the bursty model
gates each node through an independent on/off Bernoulli per slot while
keeping the same long-run mean, so it stresses queues with the same offered
load.  Models are looked up by name from :data:`TRAFFIC_MODELS` — the
``ScenarioSpec.traffic`` campaign axis stores only the name, keeping run
identities stable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrafficModel:
    """Offered load as a multiple of the destination's delivery capacity.

    All flows sink at the single destination, so the binding constraint at
    any size is the sink cut: ``deg(destination) * link_capacity`` packets
    per slot.  ``rate`` is the aggregate arrival rate expressed as a
    fraction of that capacity (1.0 = exactly saturating, >1 = guaranteed
    drops), split evenly across non-destination nodes — which keeps the
    model names meaning the same thing on a 9-node grid and a 1024-node
    one.  When ``burst_on < 1`` a node only injects in slots where an
    independent Bernoulli(``burst_on``) fires, at ``rate / burst_on`` —
    same long-run mean, heavier bursts.
    """

    name: str
    rate: float
    burst_on: float = 1.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"traffic rate must be >= 0, got {self.rate}")
        if not 0.0 < self.burst_on <= 1.0:
            raise ValueError(f"burst_on must be in (0, 1], got {self.burst_on}")

    @property
    def on_rate(self) -> float:
        """Arrival rate while a node is in an on-slot."""
        return self.rate / self.burst_on


#: The named models the ``traffic`` spec field accepts.  Rates are chosen so
#: "steady" keeps queues shallow on converged DAGs while "heavy"
#: oversubscribes the sink cut and pushes queues into tail drops.
TRAFFIC_MODELS = {
    "trickle": TrafficModel("trickle", rate=0.1),
    "steady": TrafficModel("steady", rate=0.5),
    "heavy": TrafficModel("heavy", rate=1.5),
    "bursty": TrafficModel("bursty", rate=0.5, burst_on=0.125),
}

TRAFFIC_MODEL_NAMES = tuple(TRAFFIC_MODELS)


def resolve_traffic(name: str) -> TrafficModel:
    """The named model, or ``ValueError`` listing the valid names."""
    try:
        return TRAFFIC_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic model {name!r}; expected one of {TRAFFIC_MODEL_NAMES}"
        ) from None
