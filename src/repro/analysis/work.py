"""Work accounting: reversal counts, step counts and algorithm comparison.

The efficiency measure used throughout the link-reversal literature (and in
Section 1 of the paper) is the *total number of reversals* performed by all
nodes until the graph becomes destination oriented.  This module measures it
for any automaton / scheduler combination and provides:

* :func:`count_reversals` — run one execution and summarise the work;
* :func:`per_node_reversals` — work broken down per node;
* :func:`compare_algorithms` — PR vs OneStepPR vs NewPR vs FR on the same
  instance under the same scheduler family (experiments E9 and E12);
* :func:`worst_case_sweep` — total work on the worst-case chain family as a
  function of the number of bad nodes ``n_b`` (experiment E10, the Θ(n_b²)
  bound of Busch & Tirthapura quoted by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.automata.executions import run
from repro.automata.ioa import IOAutomaton
from repro.core.full_reversal import FullReversal
from repro.core.graph import LinkReversalInstance
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.topology.generators import worst_case_chain_instance

Node = Hashable


@dataclass
class WorkSummary:
    """Work performed by one execution of a link-reversal algorithm."""

    algorithm: str
    scheduler: str
    node_steps: int
    edge_reversals: int
    dummy_steps: int
    converged: bool
    destination_oriented: bool
    per_node_steps: Dict[Node, int] = field(default_factory=dict)
    per_node_reversals: Dict[Node, int] = field(default_factory=dict)

    @property
    def total_work(self) -> int:
        """Total node steps — the cost measure of the literature."""
        return self.node_steps

    def to_dict(self, per_node: bool = False) -> Dict[str, object]:
        """JSON-compatible form (used by ``--json`` CLI output and the store)."""
        data: Dict[str, object] = {
            "algorithm": self.algorithm,
            "scheduler": self.scheduler,
            "node_steps": self.node_steps,
            "edge_reversals": self.edge_reversals,
            "dummy_steps": self.dummy_steps,
            "converged": self.converged,
            "destination_oriented": self.destination_oriented,
        }
        if per_node:
            data["per_node_steps"] = {str(k): v for k, v in self.per_node_steps.items()}
            data["per_node_reversals"] = {
                str(k): v for k, v in self.per_node_reversals.items()
            }
        return data

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"{self.algorithm}/{self.scheduler}: {self.node_steps} steps, "
            f"{self.edge_reversals} edge reversals, {self.dummy_steps} dummy steps, "
            f"{'converged' if self.converged else 'NOT converged'}"
        )


class WorkObserver:
    """Per-step observer accumulating step and reversal counts.

    Public so that callers composing their own observer stacks (the experiment
    runner adds round counting and a wall-clock deadline on top) can reuse the
    signature-XOR reversal accounting instead of re-deriving it.
    """

    def __init__(self) -> None:
        self.node_steps = 0
        self.edge_reversals = 0
        self.dummy_steps = 0
        self.per_node_steps: Dict[Node, int] = {}
        self.per_node_reversals: Dict[Node, int] = {}

    def __call__(self, step_index, pre_state, action, post_state) -> None:
        actors = action.actors()
        self.node_steps += len(actors)
        # the graph signatures are reversal bitmasks over the same edge index,
        # so the XOR's set bits are exactly the edges this step flipped
        instance = pre_state.instance
        diff = pre_state.graph_signature() ^ post_state.graph_signature()
        flipped_by: Dict[Node, int] = {}
        flipped_total = 0
        while diff:
            low = diff & -diff
            edge_index = low.bit_length() - 1
            diff ^= low
            flipped_total += 1
            tail, head = instance.edge_endpoints(edge_index)
            # attribute the reversal to the actor incident to the edge
            for node in actors:
                if node == tail or node == head:
                    flipped_by[node] = flipped_by.get(node, 0) + 1
                    break
        self.edge_reversals += flipped_total
        for node in actors:
            self.per_node_steps[node] = self.per_node_steps.get(node, 0) + 1
            reversed_here = flipped_by.get(node, 0)
            self.per_node_reversals[node] = (
                self.per_node_reversals.get(node, 0) + reversed_here
            )
            if reversed_here == 0:
                self.dummy_steps += 1


def count_reversals(
    automaton: IOAutomaton,
    scheduler,
    max_steps: Optional[int] = None,
) -> WorkSummary:
    """Run one execution to quiescence and summarise the work performed."""
    observer = WorkObserver()
    result = run(
        automaton, scheduler, max_steps=max_steps, observers=(observer,), record_states=False
    )
    final = result.final_state
    oriented = final.is_destination_oriented() if hasattr(final, "is_destination_oriented") else False
    return WorkSummary(
        algorithm=automaton.name,
        scheduler=type(scheduler).__name__,
        node_steps=observer.node_steps,
        edge_reversals=observer.edge_reversals,
        dummy_steps=observer.dummy_steps,
        converged=result.converged,
        destination_oriented=oriented,
        per_node_steps=observer.per_node_steps,
        per_node_reversals=observer.per_node_reversals,
    )


def kernel_count_reversals(
    automaton: IOAutomaton,
    scheduler_name: str,
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> Optional[WorkSummary]:
    """Fast-path :func:`count_reversals` on the compiled signature kernel.

    Runs the convergence entirely as int operations (no state objects on the
    hot path) and returns a summary with the same algorithm/scheduler labels
    and — by the engine's differential contract — the same counters as the
    object path.  Returns ``None`` when the automaton has no compiled kernel
    or the scheduler no mask-level twin (callers fall back to the oracle).
    Per-node breakdowns are not tracked on the fast path; the summary's
    per-node dicts are empty.
    """
    from repro.kernels import (
        MASK_SCHEDULER_FACTORIES,
        SignatureSimulator,
        WorkTally,
        compile_expander,
        make_mask_scheduler,
        mask_is_destination_oriented,
    )
    from repro.schedulers import make_scheduler

    if scheduler_name not in MASK_SCHEDULER_FACTORIES:
        return None
    kernel = compile_expander(automaton)
    if kernel is None:
        return None
    simulator = SignatureSimulator(kernel)
    work = WorkTally()
    outcome = simulator.run_phase(
        make_mask_scheduler(scheduler_name, seed), max_steps=max_steps, work=work
    )
    mask = kernel.orientation_mask(outcome.signature)
    return WorkSummary(
        algorithm=automaton.name,
        scheduler=type(make_scheduler(scheduler_name, seed)).__name__,
        node_steps=work.node_steps,
        edge_reversals=work.edge_reversals,
        dummy_steps=work.dummy_steps,
        converged=outcome.converged,
        destination_oriented=mask_is_destination_oriented(automaton.instance, mask),
    )


def per_node_reversals(
    automaton: IOAutomaton,
    scheduler,
    max_steps: Optional[int] = None,
) -> Dict[Node, int]:
    """Per-node edge-reversal counts of one execution (zero for idle nodes)."""
    summary = count_reversals(automaton, scheduler, max_steps=max_steps)
    counts = {u: 0 for u in automaton.instance.nodes}
    counts.update(summary.per_node_reversals)
    return counts


#: The default set of algorithms compared by :func:`compare_algorithms`.
DEFAULT_ALGORITHMS: Mapping[str, Callable[[LinkReversalInstance], IOAutomaton]] = {
    "PR": PartialReversal,
    "OneStepPR": OneStepPartialReversal,
    "NewPR": NewPartialReversal,
    "FR": FullReversal,
}


def compare_algorithms(
    instance: LinkReversalInstance,
    scheduler_factory: Callable[[], object],
    algorithms: Optional[Mapping[str, Callable[[LinkReversalInstance], IOAutomaton]]] = None,
    max_steps: Optional[int] = None,
) -> Dict[str, WorkSummary]:
    """Run every algorithm on the same instance and return their work summaries.

    ``scheduler_factory`` is called once per algorithm so that scheduler state
    (round queues, RNG position) never leaks between runs.
    """
    algorithms = dict(algorithms or DEFAULT_ALGORITHMS)
    results: Dict[str, WorkSummary] = {}
    for name, factory in algorithms.items():
        automaton = factory(instance)
        scheduler = scheduler_factory()
        results[name] = count_reversals(automaton, scheduler, max_steps=max_steps)
    return results


def worst_case_sweep(
    bad_node_counts: Sequence[int],
    algorithm_factory: Callable[[LinkReversalInstance], IOAutomaton],
    scheduler_factory: Callable[[], object],
    max_steps: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Total work on the worst-case chain as a function of ``n_b``.

    Returns ``[(n_b, total node steps), ...]`` — the data series behind the
    Θ(n_b²) experiment (E10).  Callers typically feed the series to
    :func:`repro.analysis.statistics.quadratic_fit_r2`.
    """
    series: List[Tuple[int, int]] = []
    for n_bad in bad_node_counts:
        instance = worst_case_chain_instance(n_bad)
        automaton = algorithm_factory(instance)
        summary = count_reversals(automaton, scheduler_factory(), max_steps=max_steps)
        series.append((n_bad, summary.node_steps))
    return series
