"""Convergence measurements for the routing experiments.

Link-reversal routing converges when the graph becomes destination oriented
again after a disruption.  The relevant quantities are:

* the number of *rounds* (greedy concurrent steps) until convergence — the
  time measure of the literature;
* the number of individual node steps — the work measure;
* whether the run converged at all within the step budget.

These are measured by :func:`measure_convergence` for a single instance and
by :func:`convergence_series` for a parameter sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.automata.executions import run
from repro.automata.ioa import IOAutomaton
from repro.core.graph import LinkReversalInstance
from repro.schedulers.greedy import GreedyScheduler


@dataclass
class ConvergenceSummary:
    """Rounds and steps needed for one instance to become destination oriented."""

    algorithm: str
    node_count: int
    edge_count: int
    bad_node_count: int
    rounds: int
    node_steps: int
    converged: bool
    destination_oriented: bool

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"{self.algorithm}: n={self.node_count}, n_b={self.bad_node_count}, "
            f"rounds={self.rounds}, steps={self.node_steps}, "
            f"{'oriented' if self.destination_oriented else 'NOT oriented'}"
        )


def measure_convergence(
    automaton: IOAutomaton,
    max_steps: Optional[int] = None,
) -> ConvergenceSummary:
    """Run the automaton to quiescence under the greedy schedule and summarise.

    The greedy scheduler's round counter provides the round measure; node
    steps are counted from the executed actions.
    """
    instance: LinkReversalInstance = automaton.instance
    scheduler = GreedyScheduler()
    node_steps = 0

    def observer(step_index, pre_state, action, post_state) -> None:
        nonlocal node_steps
        node_steps += len(action.actors())

    result = run(
        automaton, scheduler, max_steps=max_steps, observers=(observer,), record_states=False
    )
    final = result.final_state
    oriented = (
        final.is_destination_oriented() if hasattr(final, "is_destination_oriented") else False
    )
    return ConvergenceSummary(
        algorithm=automaton.name,
        node_count=instance.node_count,
        edge_count=instance.edge_count,
        bad_node_count=len(instance.bad_nodes()),
        rounds=scheduler.rounds,
        node_steps=node_steps,
        converged=result.converged,
        destination_oriented=oriented,
    )


def convergence_series(
    instances: Sequence[LinkReversalInstance],
    algorithm_factory: Callable[[LinkReversalInstance], IOAutomaton],
    max_steps: Optional[int] = None,
) -> List[ConvergenceSummary]:
    """Measure convergence for every instance in a sweep."""
    return [
        measure_convergence(algorithm_factory(instance), max_steps=max_steps)
        for instance in instances
    ]
