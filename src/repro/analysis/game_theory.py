"""Game-theoretic comparison of Full and Partial Reversal strategies.

Section 1 of the paper cites Charron-Bost, Welch and Widder ("Link reversal:
how to play better to work less") for the result that, viewed as a game in
which every node picks its own reversal strategy,

* the all-Full-Reversal profile is always a Nash equilibrium but has the
  largest social cost among Nash equilibria, and
* the all-Partial-Reversal profile is not necessarily an equilibrium, but
  when it is one it attains the global optimum (minimum social cost).

This module reproduces the *shape* of that result on small instances with an
explicit, enumerable strategy space: each non-destination node independently
plays either ``FULL`` (when it steps it reverses all incident edges) or
``PARTIAL`` (it plays the list-based PR rule).  A profile induces a
well-defined "mixed" link-reversal algorithm; the cost of a node is the number
of steps it takes until the graph is destination oriented (work is measured
under the deterministic greedy schedule), and the social cost is the sum.

The strategy space here is a two-point restriction of the richer game in the
cited paper, which is enough to check the headline comparisons empirically
(experiment E11); DESIGN.md records this substitution.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterator, Mapping, Optional, Tuple

from repro.automata.executions import run
from repro.core.base import LinkReversalAutomaton
from repro.core.graph import LinkReversalInstance, Orientation
from repro.core.pr import PRState
from repro.schedulers.greedy import GreedyScheduler

Node = Hashable


class Strategy(enum.Enum):
    """A node's reversal strategy in the restricted game."""

    FULL = "full"
    PARTIAL = "partial"


@dataclass(frozen=True)
class StrategyProfile:
    """An assignment of a strategy to every non-destination node."""

    assignment: Mapping[Node, Strategy]

    def strategy_of(self, node: Node) -> Strategy:
        """The strategy played by ``node``."""
        return self.assignment[node]

    def with_strategy(self, node: Node, strategy: Strategy) -> "StrategyProfile":
        """A copy of the profile in which ``node`` deviates to ``strategy``."""
        new_assignment = dict(self.assignment)
        new_assignment[node] = strategy
        return StrategyProfile(new_assignment)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        parts = ", ".join(f"{node}:{s.value}" for node, s in sorted(self.assignment.items(), key=lambda kv: repr(kv[0])))
        return f"Profile({parts})"

    def __hash__(self) -> int:
        return hash(tuple(sorted(((repr(k), v) for k, v in self.assignment.items()))))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrategyProfile):
            return NotImplemented
        return dict(self.assignment) == dict(other.assignment)


def full_reversal_profile(instance: LinkReversalInstance) -> StrategyProfile:
    """The profile in which every node plays Full Reversal."""
    return StrategyProfile({u: Strategy.FULL for u in instance.non_destination_nodes})


def partial_reversal_profile(instance: LinkReversalInstance) -> StrategyProfile:
    """The profile in which every node plays Partial Reversal."""
    return StrategyProfile({u: Strategy.PARTIAL for u in instance.non_destination_nodes})


def enumerate_profiles(instance: LinkReversalInstance) -> Iterator[StrategyProfile]:
    """Every profile of the two-strategy game (``2^(n-1)`` of them)."""
    nodes = instance.non_destination_nodes
    for combo in itertools.product((Strategy.FULL, Strategy.PARTIAL), repeat=len(nodes)):
        yield StrategyProfile(dict(zip(nodes, combo)))


class MixedStrategyReversal(LinkReversalAutomaton):
    """The link-reversal automaton induced by a strategy profile.

    A node playing ``PARTIAL`` follows the PR rule (dynamic list of neighbours
    that reversed towards it since its last step); a node playing ``FULL``
    reverses all incident edges whenever it steps.  Neighbours of a stepping
    node update their lists regardless of their own strategy, exactly as in PR
    (the list only matters for nodes that play ``PARTIAL``).
    """

    name = "MixedStrategy"

    def __init__(self, instance: LinkReversalInstance, profile: StrategyProfile):
        super().__init__(instance)
        missing = set(instance.non_destination_nodes) - set(profile.assignment)
        if missing:
            raise ValueError(f"profile missing strategies for nodes {sorted(map(str, missing))}")
        self.profile = profile

    def initial_state(self) -> PRState:
        return PRState(self.instance, self.instance.initial_orientation())

    def _apply_reverse(self, state: PRState, u: Node) -> PRState:
        new_state = state.copy()
        orientation = new_state.orientation
        lists = new_state.lists

        nbrs = self.instance.nbrs(u)
        if self.profile.strategy_of(u) is Strategy.FULL:
            targets: FrozenSet[Node] = nbrs
        else:
            u_list = state.lists[u]
            targets = nbrs if u_list == nbrs else nbrs - u_list
        for v in targets:
            orientation.reverse_edge(u, v)
            lists[v] = lists[v] | {u}
        lists[u] = frozenset()
        return new_state


@dataclass
class GameOutcome:
    """Per-node costs and social cost of one profile on one instance."""

    profile: StrategyProfile
    node_costs: Dict[Node, int]
    converged: bool

    @property
    def social_cost(self) -> int:
        """Total number of steps taken by all nodes."""
        return sum(self.node_costs.values())


def play(
    instance: LinkReversalInstance,
    profile: StrategyProfile,
    max_steps: Optional[int] = None,
) -> GameOutcome:
    """Run the mixed-strategy automaton to quiescence under the greedy schedule."""
    automaton = MixedStrategyReversal(instance, profile)
    node_costs: Dict[Node, int] = {u: 0 for u in instance.non_destination_nodes}

    def observer(step_index, pre_state, action, post_state) -> None:
        for node in action.actors():
            node_costs[node] = node_costs.get(node, 0) + 1

    result = run(
        automaton,
        GreedyScheduler(),
        max_steps=max_steps,
        observers=(observer,),
        record_states=False,
    )
    return GameOutcome(profile=profile, node_costs=node_costs, converged=result.converged)


def social_cost(
    instance: LinkReversalInstance,
    profile: StrategyProfile,
    max_steps: Optional[int] = None,
) -> int:
    """The social cost (total steps) of a profile on an instance."""
    return play(instance, profile, max_steps=max_steps).social_cost


def is_nash_equilibrium(
    instance: LinkReversalInstance,
    profile: StrategyProfile,
    max_steps: Optional[int] = None,
) -> bool:
    """Whether no single node can strictly reduce *its own* cost by deviating."""
    baseline = play(instance, profile, max_steps=max_steps)
    for node in instance.non_destination_nodes:
        current = profile.strategy_of(node)
        alternative = Strategy.FULL if current is Strategy.PARTIAL else Strategy.PARTIAL
        deviated = play(instance, profile.with_strategy(node, alternative), max_steps=max_steps)
        if deviated.node_costs[node] < baseline.node_costs[node]:
            return False
    return True


@dataclass
class GameAnalysis:
    """Full enumeration of the restricted game on one instance."""

    instance: LinkReversalInstance
    outcomes: Dict[StrategyProfile, GameOutcome] = field(default_factory=dict)
    equilibria: Tuple[StrategyProfile, ...] = ()

    @property
    def optimum_cost(self) -> int:
        """The minimum social cost over all profiles."""
        return min(outcome.social_cost for outcome in self.outcomes.values())

    def cost_of(self, profile: StrategyProfile) -> int:
        """Social cost of a specific profile."""
        return self.outcomes[profile].social_cost

    def equilibrium_costs(self) -> Tuple[int, ...]:
        """Social costs of all Nash equilibria, sorted ascending."""
        return tuple(sorted(self.outcomes[p].social_cost for p in self.equilibria))


def analyse_game(
    instance: LinkReversalInstance,
    max_steps: Optional[int] = None,
) -> GameAnalysis:
    """Enumerate every profile of the restricted game, marking Nash equilibria.

    Exponential in the number of non-destination nodes; intended for instances
    with at most ~10 such nodes (the benchmark uses 4-7).
    """
    analysis = GameAnalysis(instance=instance)
    for profile in enumerate_profiles(instance):
        analysis.outcomes[profile] = play(instance, profile, max_steps=max_steps)
    equilibria = [
        profile
        for profile in analysis.outcomes
        if is_nash_equilibrium(instance, profile, max_steps=max_steps)
    ]
    analysis.equilibria = tuple(equilibria)
    return analysis
