"""Quantitative analysis of link-reversal executions.

* :mod:`repro.analysis.work` — reversal and step counting, per-node work,
  algorithm comparison (PR vs FR vs NewPR), and the Θ(n_b²) worst-case sweep;
* :mod:`repro.analysis.game_theory` — the Charron-Bost / Welch / Widder view
  of link reversal as a game: per-node strategies, social cost, best-response
  and Nash-equilibrium checks on small instances;
* :mod:`repro.analysis.convergence` — rounds-to-convergence and
  convergence-under-mobility measurements used by the routing experiments;
* :mod:`repro.analysis.statistics` — tiny self-contained helpers (means,
  percentiles, least-squares polynomial fit) so the benchmarks do not need
  scipy at runtime.
"""

from repro.analysis.work import (
    WorkSummary,
    count_reversals,
    compare_algorithms,
    per_node_reversals,
    worst_case_sweep,
)
from repro.analysis.game_theory import (
    GameOutcome,
    StrategyProfile,
    enumerate_profiles,
    social_cost,
    is_nash_equilibrium,
    full_reversal_profile,
    partial_reversal_profile,
)
from repro.analysis.convergence import ConvergenceSummary, measure_convergence
from repro.analysis.statistics import mean, percentile, fit_polynomial, quadratic_fit_r2

__all__ = [
    "ConvergenceSummary",
    "GameOutcome",
    "StrategyProfile",
    "WorkSummary",
    "compare_algorithms",
    "count_reversals",
    "enumerate_profiles",
    "fit_polynomial",
    "full_reversal_profile",
    "is_nash_equilibrium",
    "mean",
    "measure_convergence",
    "partial_reversal_profile",
    "per_node_reversals",
    "percentile",
    "quadratic_fit_r2",
    "social_cost",
    "worst_case_sweep",
]
