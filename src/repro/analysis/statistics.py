"""Small statistics helpers used by the analysis layer and the benchmarks.

Kept dependency-free (no scipy at runtime) and deliberately simple: the
benchmarks only need means, percentiles and a least-squares polynomial fit to
verify that the worst-case work curves are quadratic in the number of bad
nodes (experiment E10).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean() of an empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) using linear interpolation."""
    if not values:
        raise ValueError("percentile() of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)


def median(values: Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(values, 50.0)


#: Percentiles reported by :func:`summary_stats` (and the campaign reports).
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


def summary_stats(
    values: Sequence[float], percentiles: Sequence[float] = DEFAULT_PERCENTILES
) -> dict:
    """Count / mean / min / max plus the requested percentiles, as a dict.

    The group-by summaries of the experiment campaign reports are built from
    this; keys are stable strings (``"p50"`` etc.) so the dict can be dumped
    to JSON or rendered as a table row directly.
    """
    if not values:
        raise ValueError("summary_stats() of an empty sequence")
    stats = {
        "count": len(values),
        "mean": mean(values),
        "min": float(min(values)),
        "max": float(max(values)),
    }
    for q in percentiles:
        stats[f"p{q:g}"] = percentile(values, q)
    return stats


def fit_polynomial(xs: Sequence[float], ys: Sequence[float], degree: int) -> List[float]:
    """Least-squares polynomial fit; returns coefficients, highest degree first.

    Implemented via the normal equations with Gaussian elimination so the
    library has no hard scipy dependency.  Adequate for the small, well
    conditioned fits the benchmarks perform (degree <= 3, |xs| <= 100).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) <= degree:
        raise ValueError("need more points than the polynomial degree")

    n = degree + 1
    # Vandermonde normal equations: (V^T V) c = V^T y
    vandermonde = [[x ** (degree - j) for j in range(n)] for x in xs]
    ata = [[0.0] * n for _ in range(n)]
    aty = [0.0] * n
    for row, y in zip(vandermonde, ys):
        for i in range(n):
            aty[i] += row[i] * y
            for j in range(n):
                ata[i][j] += row[i] * row[j]

    # Gaussian elimination with partial pivoting
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(ata[r][col]))
        if abs(ata[pivot][col]) < 1e-12:
            raise ValueError("singular system in polynomial fit")
        if pivot != col:
            ata[col], ata[pivot] = ata[pivot], ata[col]
            aty[col], aty[pivot] = aty[pivot], aty[col]
        for row in range(col + 1, n):
            factor = ata[row][col] / ata[col][col]
            for k in range(col, n):
                ata[row][k] -= factor * ata[col][k]
            aty[row] -= factor * aty[col]

    coefficients = [0.0] * n
    for row in range(n - 1, -1, -1):
        total = aty[row] - sum(ata[row][k] * coefficients[k] for k in range(row + 1, n))
        coefficients[row] = total / ata[row][row]
    return coefficients


def evaluate_polynomial(coefficients: Sequence[float], x: float) -> float:
    """Evaluate a polynomial given coefficients with the highest degree first."""
    result = 0.0
    for c in coefficients:
        result = result * x + c
    return result


def r_squared(xs: Sequence[float], ys: Sequence[float], coefficients: Sequence[float]) -> float:
    """Coefficient of determination of a polynomial fit."""
    if not ys:
        raise ValueError("r_squared() needs data")
    y_mean = mean(list(ys))
    ss_res = sum((y - evaluate_polynomial(coefficients, x)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - y_mean) ** 2 for y in ys)
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def quadratic_fit_r2(xs: Sequence[float], ys: Sequence[float]) -> Tuple[List[float], float]:
    """Fit ``y = a x² + b x + c`` and return ``(coefficients, R²)``.

    Used by the Θ(n_b²) experiment: a good quadratic fit (R² close to 1 with a
    clearly positive leading coefficient) is the measured analogue of the
    worst-case bound quoted in Section 1 of the paper.
    """
    coefficients = fit_polynomial(xs, ys, degree=2)
    return coefficients, r_squared(xs, ys, coefficients)
