"""The compiled asynchronous network engine: the hot loop as pure int ops.

:class:`FastAsyncNetwork` is the campaign-scale twin of
:class:`~repro.distributed.network.AsyncLinkReversalNetwork`.  The object
network dispatches dataclass events through per-message callback closures,
compares :class:`~repro.distributed.protocol.HeightValue` dataclasses and
keeps per-channel in-flight lists; none of that survives on the hot path
here:

* **Packed int heights** — a height triple ``(a, b, rank)`` is one int
  ``(a << 64) | ((b + 2^43) << 20) | rank``, so the lexicographic height
  order *is* integer ``<`` and every local-sink test is a handful of int
  compares (full-reversal pairs are the ``b = 0`` special case).
* **Flat tuple heap** — events are plain ``(time, seq, kind, ...)`` tuples
  in a :mod:`heapq`; ties break on the globally allocated ``seq`` exactly
  like the object simulator's sequence numbers, so the two engines dispatch
  in the same order.
* **Ring-buffer FIFO channels** — for the FIFO delay models (``zero``,
  ``fixed``, ``fifo``) each directed link keeps its in-flight messages in a
  ring buffer (:class:`collections.deque`) and only the head message lives
  in the heap; a delivery pops the ring and re-arms the next head.  The heap
  stays O(links) instead of O(messages in flight).  Non-FIFO models
  (``uniform``) fall back to one heap entry per message.
* **Epoch-invalidated links** — a link failure bumps the link's epoch
  instead of hunting down and cancelling in-flight events; stale events are
  skipped when popped, which is both faster and immune to the unbounded
  cancelled-event growth the object simulator needed compaction for.
* **Blake2-derived per-link seeds** — the same
  :func:`~repro.distributed.network.derive_channel_seed` scheme as the
  object network, so both engines consume identical per-link random streams.
* **Batched inline delivery** — the run loop drains the heap with inlined
  handlers (height update, local-sink test, reversal, broadcast) instead of
  scheduling per-message callbacks.

The object network remains the **documented oracle**: for every delay model,
loss rate, seed and link-churn sequence, a run of this engine must produce a
field-for-field identical :class:`~repro.distributed.network.NetworkReport`
and the same induced global orientation
(``tests/test_fast_network_differential.py`` pins this).

Beyond parity the engine adds what the campaign layer needs: cooperative
wall-clock deadlines (:class:`~repro.kernels.simulator.DeadlineExceeded`
like every other engine), a :meth:`FastAsyncNetwork.quiescent` flag, and
message-passing work counters (``reversal_count`` / ``edge_flips`` /
``dummy_reversals``) measured against the true global heights.
"""

from __future__ import annotations

import heapq
import logging
from collections import deque
from random import Random
from time import perf_counter
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro import telemetry as _telemetry
from repro.core.graph import LinkReversalInstance, Orientation
from repro.distributed.network import (
    NetworkReport,
    derive_channel_seed,
    derive_link_up_seed,
    initial_height_levels,
)
from repro.distributed.protocol import HeightValue, ReversalMode
from repro.kernels.simulator import DEADLINE_CHECK_STRIDE, DeadlineExceeded

logger = logging.getLogger(__name__)

Node = Hashable

# height packing: (a << 64) | ((b + B_OFFSET) << R_BITS) | rank
_R_BITS = 20
_R_MASK = (1 << _R_BITS) - 1
_B_BITS = 44
_B_MASK = (1 << _B_BITS) - 1
_B_OFFSET = 1 << (_B_BITS - 1)
_A_SHIFT = _R_BITS + _B_BITS

# event kinds (position 2 of a heap tuple; never compared — seq is unique)
_START = 0
_DELIVER = 1
_BEACON = 2


def pack_height(a: int, b: int, rank: int) -> int:
    """One packed int whose integer order is the lexicographic (a, b, rank)."""
    field = b + _B_OFFSET
    if not 0 <= field <= _B_MASK:
        raise OverflowError(f"height b-component {b} out of packed range")
    return (a << _A_SHIFT) | (field << _R_BITS) | rank


def unpack_height(packed: int) -> Tuple[int, int, int]:
    """The ``(a, b, rank)`` triple of a packed height."""
    return (
        packed >> _A_SHIFT,
        ((packed >> _R_BITS) & _B_MASK) - _B_OFFSET,
        packed & _R_MASK,
    )


class FastAsyncNetwork:
    """A compiled asynchronous deployment of height-based link reversal.

    Drop-in behavioural twin of
    :class:`~repro.distributed.network.AsyncLinkReversalNetwork` (same
    constructor semantics, same reports, same induced orientations for the
    same seeds) with an int-only hot loop.
    """

    def __init__(
        self,
        instance: LinkReversalInstance,
        mode: ReversalMode = ReversalMode.PARTIAL,
        min_delay: float = 1.0,
        max_delay: float = 2.0,
        loss_probability: float = 0.0,
        seed: int = 0,
        fifo: bool = False,
    ):
        if min_delay < 0 or max_delay < min_delay:
            raise ValueError("delays must satisfy 0 <= min_delay <= max_delay")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        instance.validate(require_dag=True)
        if instance.node_count > _R_MASK:
            raise ValueError(
                f"packed heights support at most {_R_MASK} nodes, "
                f"got {instance.node_count}"
            )
        self.instance = instance
        self.mode = mode
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.loss_probability = loss_probability
        self.fifo = fifo
        self.seed = seed
        self._full = mode is ReversalMode.FULL
        #: constant delays make delivery times globally monotone: the whole
        #: network shares one FIFO ring buffer and the heap only ever holds
        #: start/beacon events
        self._const_mode = max_delay <= min_delay
        #: random-but-FIFO delays (the ``fifo`` clamp) keep per-link ring
        #: buffers with one heap entry per link; random reordering delays
        #: (``uniform``) need one heap entry per message
        self._ring_mode = fifo and not self._const_mode

        nodes = instance.nodes
        n = instance.node_count
        self._nodes = nodes
        self._node_id = dict(instance._node_id)
        self._dest = self._node_id[instance.destination]
        #: crash-stop flags: a crashed node keeps its last height and still
        #: receives messages, but never reverses and never beacons again
        self._crashed = bytearray(n)
        self._repr_key: List[str] = [repr(u) for u in nodes]

        levels = initial_height_levels(instance)
        self._height = [pack_height(0, levels[u], self._node_id[u]) for u in nodes]
        self._nbrs: List[Set[int]] = [
            {self._node_id[v] for v in instance.nbrs(u)} for u in nodes
        ]
        # broadcast order mirrors the object protocol: neighbours sorted by repr
        self._sorted_nbrs: List[List[int]] = [
            sorted(ids, key=self._repr_key.__getitem__) for ids in self._nbrs
        ]
        #: per node: outgoing link ids aligned with ``_sorted_nbrs`` (rebuilt
        #: on link churn) so a broadcast never touches the link-index dict
        self._bcast_links: List[List[int]] = [[] for _ in range(n)]
        self._known: List[Dict[int, int]] = [
            {j: self._height[j] for j in ids} for ids in self._nbrs
        ]
        # incremental local-sink state: a node is a local sink iff it has
        # neighbours, knows all their heights (unknown == 0) and none of the
        # known heights is <= its own (blocking == 0).  Maintaining the two
        # counters makes the per-message sink test O(1) instead of O(deg).
        self._unknown: List[int] = [0] * n
        self._blocking: List[int] = [
            sum(1 for value in self._known[i].values() if value <= self._height[i])
            for i in range(n)
        ]

        # directed links, in the object network's construction order
        self._links: Set[Tuple[int, int]] = set()
        self._link_index: Dict[Tuple[int, int], int] = {}
        self._link_from: List[int] = []
        self._link_to: List[int] = []
        self._link_up: List[bool] = []
        self._link_epoch: List[int] = []
        self._rng_random: List = []
        self._rng_uniform: List = []
        self._sent: List[int] = []
        self._delivered: List[int] = []
        self._dropped: List[int] = []
        self._lost_failure: List[int] = []
        self._in_flight: List[int] = []
        self._ring: List[deque] = []
        self._head_pending: List[bool] = []
        self._last_sched: List[float] = []
        self._link_generation: Dict[Tuple[int, int], int] = {}

        undirected = sorted(
            (tuple(sorted(self._node_id[x] for x in edge)))
            for edge in instance.undirected_edges
        )
        for lo, hi in undirected:
            self._links.add((lo, hi))
            for s, r in ((lo, hi), (hi, lo)):
                self._new_link(s, r, derive_channel_seed(seed, s, r))
        for i in range(n):
            self._rebuild_bcast_links(i)

        # every node announces its initial height at time zero; the start
        # events take sequence numbers 0..n-1 exactly like the object network
        self._heap: List[tuple] = [(0.0, i, _START, i) for i in range(n)]
        heapq.heapify(self._heap)
        #: the global delivery ring buffer of const-delay mode:
        #: ``(time, seq, lid, height, epoch)`` entries in (time, seq) order
        self._dq: deque = deque()
        #: the next event sequence number, boxed so the compiled broadcast
        #: closure shares it
        self._seq_box = [n]
        self._now = 0.0
        #: queued events invalidated by link failures (heap or ring buffer)
        self._stale_events = 0
        self.events_dispatched = 0
        self.beacon_rounds = 0
        self._broadcast = self._compile_broadcast()

        #: per-node reversal counts plus true-height work accounting
        self.reversal_counts: List[int] = [0] * n
        self.edge_flips = 0
        self.dummy_reversals = 0

    # ------------------------------------------------------------------
    # link plumbing
    # ------------------------------------------------------------------
    def _new_link(self, sender: int, receiver: int, link_seed: int) -> int:
        """Register a directed link and return its id."""
        lid = len(self._link_from)
        self._link_index[(sender, receiver)] = lid
        self._link_from.append(sender)
        self._link_to.append(receiver)
        self._link_up.append(True)
        self._link_epoch.append(0)
        rng = Random(link_seed)
        self._rng_random.append(rng.random)
        self._rng_uniform.append(rng.uniform)
        self._sent.append(0)
        self._delivered.append(0)
        self._dropped.append(0)
        self._lost_failure.append(0)
        self._in_flight.append(0)
        self._ring.append(deque())
        self._head_pending.append(False)
        self._last_sched.append(0.0)
        return lid

    def _rebuild_bcast_links(self, i: int) -> None:
        """Re-align node ``i``'s broadcast link ids with its sorted neighbours."""
        index = self._link_index
        self._bcast_links[i] = [index[(i, j)] for j in self._sorted_nbrs[i]]

    def _send_height(self, i: int, j: int, height: int) -> None:
        """Send ``i``'s height to ``j`` (single-message cold path)."""
        lid = self._link_index.get((i, j))
        if lid is None or not self._link_up[lid]:
            return  # the link no longer exists (object twin: channel removed)
        self._sent[lid] += 1
        loss = self.loss_probability
        if loss > 0.0 and self._rng_random[lid]() < loss:
            self._dropped[lid] += 1
            return
        min_delay = self.min_delay
        if self.max_delay > min_delay:
            delay = self._rng_uniform[lid](min_delay, self.max_delay)
        else:
            delay = min_delay
        t = self._now + delay
        if self.fifo:
            last = self._last_sched[lid]
            if t < last:
                t = last
            self._last_sched[lid] = t
        seq = self._seq_box[0]
        self._seq_box[0] = seq + 1
        self._in_flight[lid] += 1
        if self._const_mode:
            self._dq.append((t, seq, lid, height, self._link_epoch[lid]))
        elif self._ring_mode:
            ring = self._ring[lid]
            ring.append((t, seq, height))
            if not self._head_pending[lid]:
                self._head_pending[lid] = True
                heapq.heappush(
                    self._heap, (t, seq, _DELIVER, lid, self._link_epoch[lid])
                )
        else:
            heapq.heappush(
                self._heap, (t, seq, _DELIVER, lid, self._link_epoch[lid], height)
            )

    # ------------------------------------------------------------------
    # the protocol (inlined, int-only)
    # ------------------------------------------------------------------
    def _compile_broadcast(self):
        """Build the broadcast hot path with every per-network constant pre-bound.

        A broadcast sends one message per neighbour per reversal — binding
        the channel state as closure cells once (instead of ~18 attribute
        loads per call) measurably shortens the send path.  All bound
        containers are mutated in place elsewhere, never rebound, so the
        closure stays valid across link churn.
        """
        heap = self._heap
        heappush = heapq.heappush
        bcast_links = self._bcast_links
        heights = self._height
        sent = self._sent
        dropped = self._dropped
        in_flight = self._in_flight
        link_epoch = self._link_epoch
        rng_random = self._rng_random
        rng_uniform = self._rng_uniform
        rings = self._ring
        head_pending = self._head_pending
        last_sched = self._last_sched
        loss = self.loss_probability
        lossless = loss <= 0.0
        min_delay = self.min_delay
        max_delay = self.max_delay
        draw_delay = max_delay > min_delay
        fifo = self.fifo
        const_mode = self._const_mode
        ring_mode = self._ring_mode
        dq = self._dq
        dq_append = dq.append
        seq_box = self._seq_box

        def broadcast(i: int) -> None:
            # a current neighbour always has a live link (fail_link removes
            # the neighbour in the same atomic update), so no aliveness check
            lids = bcast_links[i]
            if not lids:
                return
            height = heights[i]
            now = self._now
            seq = seq_box[0]
            if const_mode and lossless:
                # the tightest send path: one constant delivery time, the
                # global ring buffer, no random draws
                t = now + min_delay
                for lid in lids:
                    sent[lid] += 1
                    in_flight[lid] += 1
                    dq_append((t, seq, lid, height, link_epoch[lid]))
                    seq += 1
                seq_box[0] = seq
                return
            for lid in lids:
                sent[lid] += 1
                if loss > 0.0 and rng_random[lid]() < loss:
                    dropped[lid] += 1
                    continue
                t = now + (
                    rng_uniform[lid](min_delay, max_delay) if draw_delay else min_delay
                )
                if fifo:
                    last = last_sched[lid]
                    if t < last:
                        t = last
                    last_sched[lid] = t
                in_flight[lid] += 1
                if const_mode:
                    dq_append((t, seq, lid, height, link_epoch[lid]))
                elif ring_mode:
                    ring = rings[lid]
                    ring.append((t, seq, height))
                    if not head_pending[lid]:
                        head_pending[lid] = True
                        heappush(heap, (t, seq, _DELIVER, lid, link_epoch[lid]))
                else:
                    heappush(heap, (t, seq, _DELIVER, lid, link_epoch[lid], height))
                seq += 1
            seq_box[0] = seq

        return broadcast

    def _maybe_reverse(self, i: int) -> None:
        """If ``i`` is a local sink, raise its height and broadcast it."""
        if (
            i != self._dest
            and not self._crashed[i]
            and self._nbrs[i]
            and self._unknown[i] == 0
            and self._blocking[i] == 0
        ):
            self._reverse(i)

    def _reverse(self, i: int) -> None:
        """Raise a local sink's height and broadcast it (the caller checked)."""
        values = self._known[i].values()
        if self._full:
            # packed order is (a, b, rank)-lexicographic, so the max packed
            # height carries the max a (and min packed the min a below)
            max_a = max(values) >> _A_SHIFT
            new_height = ((max_a + 1) << _A_SHIFT) | (_B_OFFSET << _R_BITS) | i
        else:
            new_a = (min(values) >> _A_SHIFT) + 1
            b_field = -1
            for value in values:
                if value >> _A_SHIFT == new_a:
                    b = (value >> _R_BITS) & _B_MASK
                    if b_field < 0 or b < b_field:
                        b_field = b
            if b_field >= 0:
                b_field -= 1
                if b_field < 0:
                    raise OverflowError("height b-component underflowed packed range")
            else:
                b_field = (self._height[i] >> _R_BITS) & _B_MASK
            new_height = (new_a << _A_SHIFT) | (b_field << _R_BITS) | i
        # true-height work accounting: before the raise every incident link
        # points at i (true heights only grow past the known ones), so the
        # edges now pointing away are exactly the flips of this reversal
        heights = self._height
        flips = 0
        for j in self._nbrs[i]:
            if new_height > heights[j]:
                flips += 1
        self.edge_flips += flips
        if flips == 0:
            self.dummy_reversals += 1
        heights[i] = new_height
        # the raise changes which known heights block i: recount against the
        # new height (full mode lifts above every known height, so all block)
        if self._full:
            blocking = len(values)
        else:
            blocking = 0
            for value in values:
                if value <= new_height:
                    blocking += 1
        self._blocking[i] = blocking
        self.reversal_counts[i] += 1
        self._broadcast(i)

    def _on_link_down(self, i: int, j: int) -> None:
        if j in self._nbrs[i]:
            self._nbrs[i].discard(j)
            self._sorted_nbrs[i].remove(j)
            removed = self._known[i].pop(j, None)
            if removed is None:
                self._unknown[i] -= 1
            elif removed <= self._height[i]:
                self._blocking[i] -= 1
            self._rebuild_bcast_links(i)
        self._maybe_reverse(i)

    def _on_link_up(self, i: int, j: int) -> None:
        if j not in self._nbrs[i]:
            self._nbrs[i].add(j)
            self._unknown[i] += 1
            order = self._sorted_nbrs[i]
            order.append(j)
            order.sort(key=self._repr_key.__getitem__)
            self._rebuild_bcast_links(i)
        self._send_height(i, j, self._height[i])
        self._maybe_reverse(i)

    # ------------------------------------------------------------------
    # the hot loop
    # ------------------------------------------------------------------
    def _run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Dispatch events in ``(time, seq)`` order; returns the dispatch count."""
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        link_epoch = self._link_epoch
        delivered = self._delivered
        in_flight = self._in_flight
        link_to = self._link_to
        link_from = self._link_from
        known_by_node = self._known
        nbrs_by_node = self._nbrs
        heights = self._height
        unknown = self._unknown
        blocking = self._blocking
        dest = self._dest
        crashed = self._crashed
        ring_mode = self._ring_mode
        rings = self._ring
        head_pending = self._head_pending
        maybe_reverse = self._maybe_reverse
        reverse = self._reverse
        broadcast = self._broadcast

        dq = self._dq
        dq_popleft = dq.popleft

        dispatched = 0
        deadline_countdown = 0
        budget_exhausted = False
        try:
            while True:
                if max_events is not None and dispatched >= max_events:
                    budget_exhausted = True
                    break
                # next event: min over the heap and the global delivery ring
                # buffer (both ordered by (time, seq); the ring buffer is
                # non-empty only in const-delay mode)
                from_dq = False
                if heap:
                    head = heap[0]
                    if dq:
                        entry = dq[0]
                        if entry[0] < head[0] or (
                            entry[0] == head[0] and entry[1] < head[1]
                        ):
                            head = entry
                            from_dq = True
                elif dq:
                    head = dq[0]
                    from_dq = True
                else:
                    break
                t = head[0]
                if until is not None and t > until:
                    break
                if from_dq:
                    dq_popleft()
                    lid = head[2]
                    if head[4] != link_epoch[lid]:
                        self._stale_events -= 1
                        continue  # invalidated by a link failure
                    height = head[3]
                else:
                    heappop(heap)
                    kind = head[2]
                    if kind != _DELIVER:
                        if kind == _START:
                            self._now = t
                            node = head[3]
                            broadcast(node)
                            maybe_reverse(node)
                        else:  # _BEACON
                            self._now = t
                            broadcast(head[3])
                        dispatched += 1
                        if deadline is not None:
                            deadline_countdown -= 1
                            if deadline_countdown < 0:
                                deadline_countdown = DEADLINE_CHECK_STRIDE - 1
                                if perf_counter() > deadline:
                                    raise DeadlineExceeded(
                                        f"deadline exceeded after "
                                        f"{self.events_dispatched + dispatched} events"
                                    )
                        continue
                    lid = head[3]
                    if head[4] != link_epoch[lid]:
                        self._stale_events -= 1
                        continue  # invalidated by a link failure
                    if ring_mode:
                        ring = rings[lid]
                        height = ring.popleft()[2]
                        if ring:
                            nxt = ring[0]
                            heappush(
                                heap, (nxt[0], nxt[1], _DELIVER, lid, link_epoch[lid])
                            )
                        else:
                            head_pending[lid] = False
                    else:
                        height = head[5]
                # ---- the delivery hot path ----
                self._now = t
                delivered[lid] += 1
                in_flight[lid] -= 1
                receiver = link_to[lid]
                sender = link_from[lid]
                if sender in nbrs_by_node[receiver]:
                    known = known_by_node[receiver]
                    old = known.get(sender)
                    # O(1) incremental sink test: track how many known
                    # heights block the receiver instead of rescanning
                    if old is None:
                        known[sender] = height
                        unknown[receiver] -= 1
                        if height <= heights[receiver]:
                            blocking[receiver] += 1
                        elif (
                            unknown[receiver] == 0
                            and blocking[receiver] == 0
                            and receiver != dest
                            and not crashed[receiver]
                        ):
                            reverse(receiver)
                    elif height > old:
                        known[sender] = height
                        own = heights[receiver]
                        if old <= own < height:
                            blocking[receiver] -= 1
                        if (
                            blocking[receiver] == 0
                            and unknown[receiver] == 0
                            and receiver != dest
                            and not crashed[receiver]
                        ):
                            reverse(receiver)
                    # a not-newer height changes no state, so the sink
                    # predicate is unchanged since the last check
                # else: stale message from a link that has since failed
                dispatched += 1
                if deadline is not None:
                    deadline_countdown -= 1
                    if deadline_countdown < 0:
                        deadline_countdown = DEADLINE_CHECK_STRIDE - 1
                        if perf_counter() > deadline:
                            raise DeadlineExceeded(
                                f"deadline exceeded after "
                                f"{self.events_dispatched + dispatched} events"
                            )
        finally:
            self.events_dispatched += dispatched
        # Advance the clock across the idle remainder of the window.  The
        # loop exits with ``_now`` at the last *dispatched* event, so without
        # this a window whose remaining events all lie beyond ``until`` would
        # leave time frozen and consecutive ``run_for`` windows would overlap
        # forever instead of sweeping forward.  Only an exhausted event
        # budget must not skip ahead: undispatched events inside the window
        # still await the next call.
        if until is not None and self._now < until and not budget_exhausted:
            self._now = until
        return dispatched

    # ------------------------------------------------------------------
    # running (the object network's API, plus deadlines)
    # ------------------------------------------------------------------
    def _sample_queue_depths(self) -> None:
        """Record peak queue gauges (phase boundaries only, never per event)."""
        registry = _telemetry.REGISTRY
        registry.max_gauge("fast_network.heap_depth", len(self._heap))
        occupancy = len(self._dq)
        if self._ring_mode:
            occupancy += sum(len(ring) for ring in self._ring)
        registry.max_gauge("fast_network.ring_occupancy", occupancy)

    def run_to_quiescence(
        self, max_events: int = 1_000_000, deadline: Optional[float] = None
    ) -> NetworkReport:
        """Dispatch events until none remain, then summarise the run."""
        if _telemetry.ENABLED:
            self._sample_queue_depths()
        self._run(max_events=max_events, deadline=deadline)
        return self.report()

    def run_for(
        self,
        duration: float,
        max_events: int = 1_000_000,
        deadline: Optional[float] = None,
    ) -> NetworkReport:
        """Advance simulated time by ``duration`` and summarise."""
        self._run(until=self._now + duration, max_events=max_events, deadline=deadline)
        return self.report()

    def broadcast_heights(self) -> None:
        """Schedule one anti-entropy beacon round (every live node re-announces)."""
        now = self._now
        seq_box = self._seq_box
        crashed = self._crashed
        for i in range(len(self._nodes)):
            if crashed[i]:
                continue
            heapq.heappush(self._heap, (now, seq_box[0], _BEACON, i))
            seq_box[0] += 1

    def run_with_beacons(
        self,
        max_rounds: int = 10,
        max_events_per_round: int = 100_000,
        deadline: Optional[float] = None,
    ) -> NetworkReport:
        """Alternate quiescence runs and beacon rounds until destination oriented."""
        report = self.run_to_quiescence(max_events=max_events_per_round, deadline=deadline)
        rounds = 0
        while not report.destination_oriented and rounds < max_rounds:
            logger.debug(
                "beacon round %d: %d events dispatched, not yet oriented",
                rounds + 1, self.events_dispatched,
            )
            self.broadcast_heights()
            report = self.run_to_quiescence(
                max_events=max_events_per_round, deadline=deadline
            )
            rounds += 1
            self.beacon_rounds += 1
        return report

    def quiescent(self) -> bool:
        """Whether no live (non-invalidated) event remains queued."""
        return len(self._heap) + len(self._dq) == self._stale_events

    # ------------------------------------------------------------------
    # topology changes
    # ------------------------------------------------------------------
    def crash_stop_ids(self, ids: Iterable[int]) -> None:
        """Crash-stop nodes by integer id: they announce their initial height
        at START but never reverse, never beacon, and drop nothing — neighbours
        keep routing around their frozen heights."""
        for i in ids:
            if i == self._dest:
                raise ValueError("cannot crash-stop the destination")
            if not 0 <= i < len(self._nodes):
                raise ValueError(f"node id {i} out of range")
            self._crashed[i] = 1

    def _ids_of(self, u: Node, v: Node) -> Tuple[int, int]:
        iu = self._node_id.get(u)
        iv = self._node_id.get(v)
        if iu is None or iv is None:
            raise ValueError(f"{u!r}-{v!r} is not a current link")
        return iu, iv

    def fail_link(self, u: Node, v: Node) -> None:
        """Remove the link ``{u, v}``: in-flight messages lost, endpoints notified."""
        iu, iv = self._ids_of(u, v)
        edge = (iu, iv) if iu < iv else (iv, iu)
        if edge not in self._links:
            raise ValueError(f"{u!r}-{v!r} is not a current link")
        self._links.discard(edge)
        for s, r in ((iu, iv), (iv, iu)):
            lid = self._link_index[(s, r)]
            if not self._link_up[lid]:
                continue
            self._link_up[lid] = False
            self._lost_failure[lid] += self._in_flight[lid]
            if self._ring_mode:
                # only the ring head has a heap entry
                if self._head_pending[lid]:
                    self._stale_events += 1
                self._ring[lid].clear()
                self._head_pending[lid] = False
            else:
                # const mode: one ring-buffer entry per message; uniform
                # mode: one heap entry per message
                self._stale_events += self._in_flight[lid]
            self._in_flight[lid] = 0
            self._link_epoch[lid] += 1
            if _telemetry.ENABLED:
                _telemetry.REGISTRY.inc("fast_network.epoch_invalidations")
        logger.debug("failed link (%r, %r)", u, v)
        self._on_link_down(iu, iv)
        self._on_link_down(iv, iu)

    def add_link(self, u: Node, v: Node) -> None:
        """Add (or re-add) the link ``{u, v}`` with fresh channel streams."""
        iu = self._node_id.get(u)
        iv = self._node_id.get(v)
        if iu is None or iv is None:
            raise ValueError(f"cannot add a link to unknown node {u!r} or {v!r}")
        edge = (iu, iv) if iu < iv else (iv, iu)
        if edge in self._links:
            return
        self._links.add(edge)
        generation = self._link_generation.get(edge, 0) + 1
        self._link_generation[edge] = generation
        for s, r in ((iu, iv), (iv, iu)):
            link_seed = derive_link_up_seed(self.seed, s, r, generation)
            lid = self._link_index.get((s, r))
            if lid is None:
                self._new_link(s, r, link_seed)
            else:
                self._link_up[lid] = True
                rng = Random(link_seed)
                self._rng_random[lid] = rng.random
                self._rng_uniform[lid] = rng.uniform
                self._last_sched[lid] = 0.0
        self._on_link_up(iu, iv)
        self._on_link_up(iv, iu)

    def current_links(self) -> FrozenSet[FrozenSet[Node]]:
        """The current undirected link set (node objects, API parity)."""
        nodes = self._nodes
        return frozenset(frozenset((nodes[a], nodes[b])) for a, b in self._links)

    def sorted_link_pairs(self) -> List[Tuple[Node, Node]]:
        """The current links as node pairs, in deterministic (id) order."""
        nodes = self._nodes
        return [(nodes[a], nodes[b]) for a, b in sorted(self._links)]

    def link_would_partition(self, u: Node, v: Node) -> bool:
        """Whether failing ``{u, v}`` would disconnect the current link graph."""
        iu, iv = self._ids_of(u, v)
        dropped = (iu, iv) if iu < iv else (iv, iu)
        n = len(self._nodes)
        adjacency: List[List[int]] = [[] for _ in range(n)]
        involved: Set[int] = set()
        for a, b in self._links:
            involved.add(a)
            involved.add(b)
            if (a, b) == dropped:
                continue
            adjacency[a].append(b)
            adjacency[b].append(a)
        if not involved:
            return False
        start = next(iter(involved))
        reached = {start}
        frontier = [start]
        while frontier:
            a = frontier.pop()
            for b in adjacency[a]:
                if b not in reached:
                    reached.add(b)
                    frontier.append(b)
        return reached != involved

    # ------------------------------------------------------------------
    # data-plane forwarding views
    # ------------------------------------------------------------------
    @property
    def destination_id(self) -> int:
        """Node id of the destination (ids index ``instance.nodes``)."""
        return self._dest

    def packed_heights(self) -> List[int]:
        """The live packed-height list, indexed by node id.

        Packed heights compare exactly like protocol height triples, so a
        greedy forwarder can pick the lowest neighbouring height directly.
        This is the view the data plane diffs after each control-plane
        advance to patch its next-hop table incrementally.  Callers must
        treat the list as read-only.
        """
        return self._height

    def neighbour_ids(self, i: int) -> Set[int]:
        """Current (alive-link) neighbour ids of node id ``i`` — a live view."""
        return self._nbrs[i]

    def sorted_link_id_pairs(self) -> List[Tuple[int, int]]:
        """The current links as sorted ``(lo, hi)`` node-id pairs."""
        return sorted(self._links)

    # ------------------------------------------------------------------
    # global views (for verification)
    # ------------------------------------------------------------------
    def true_heights(self) -> Dict[Node, HeightValue]:
        """The actual current height of every node, as protocol triples."""
        result = {}
        for i, u in enumerate(self._nodes):
            a, b, rank = unpack_height(self._height[i])
            result[u] = HeightValue(a=a, b=b, rank=rank)
        return result

    def global_directed_edges(self) -> Tuple[Tuple[Node, Node], ...]:
        """The orientation induced by the true heights on the current link set."""
        heights = self._height
        nodes = self._nodes
        edges: List[Tuple[Node, Node]] = []
        for lo, hi in sorted(self._links):
            if heights[lo] > heights[hi]:
                edges.append((nodes[lo], nodes[hi]))
            else:
                edges.append((nodes[hi], nodes[lo]))
        return tuple(edges)

    def global_orientation(self) -> Optional[Orientation]:
        """The global orientation, if the link set still matches the instance."""
        initial = {
            tuple(sorted(self._node_id[x] for x in edge))
            for edge in self.instance.undirected_edges
        }
        if self._links != initial:
            return None
        return Orientation.from_directed_edges(self.instance, self.global_directed_edges())

    def is_acyclic(self) -> bool:
        """Heights are totally ordered, so the induced orientation is acyclic."""
        return len(set(self._height)) == len(self._height)

    def is_destination_oriented(self) -> bool:
        """Whether every node reaches the destination along the induced edges."""
        n = len(self._nodes)
        heights = self._height
        predecessors: List[List[int]] = [[] for _ in range(n)]
        for lo, hi in self._links:
            if heights[lo] > heights[hi]:
                predecessors[hi].append(lo)
            else:
                predecessors[lo].append(hi)
        reached = bytearray(n)
        reached[self._dest] = 1
        frontier = [self._dest]
        count = 1
        while frontier:
            u = frontier.pop()
            for v in predecessors[u]:
                if not reached[v]:
                    reached[v] = 1
                    count += 1
                    frontier.append(v)
        return count == n

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    def total_reversals(self) -> int:
        """Total height raises across all nodes so far."""
        return sum(self.reversal_counts)

    def message_counts(self) -> Tuple[int, int, int]:
        """Cumulative ``(sent, delivered, lost)`` message totals."""
        return (
            sum(self._sent),
            sum(self._delivered),
            sum(self._dropped) + sum(self._lost_failure),
        )

    def report(self) -> NetworkReport:
        """Aggregate statistics of the run so far (object-network parity)."""
        return NetworkReport(
            simulated_time=self._now,
            events_dispatched=self.events_dispatched,
            messages_sent=sum(self._sent),
            messages_delivered=sum(self._delivered),
            messages_lost=sum(self._dropped) + sum(self._lost_failure),
            total_reversals=self.total_reversals(),
            destination_oriented=self.is_destination_oriented(),
            acyclic=self.is_acyclic(),
        )
