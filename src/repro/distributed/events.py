"""A small deterministic discrete-event simulator.

Events are callbacks scheduled at a simulated time; ties are broken by a
monotonically increasing sequence number so runs are fully deterministic for a
given seed and schedule of calls.  The simulator knows nothing about networks
or link reversal — it only orders and dispatches events — which keeps it
reusable for the routing, leader-election and mutual-exclusion layers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

EventCallback = Callable[["DiscreteEventSimulator"], None]


@dataclass(order=True)
class ScheduledEvent:
    """An event in the queue, ordered by ``(time, sequence)``."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    #: Back-reference set by :meth:`DiscreteEventSimulator.schedule` so that a
    #: cancellation can be accounted for (and trigger queue compaction)
    #: without scanning the heap.  Cleared when the event leaves the queue,
    #: so a late cancel() on an already-dispatched event is an inert flag set
    #: rather than a phantom entry in the pending-event accounting.
    _simulator: Optional["DiscreteEventSimulator"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when dequeued."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._simulator is not None:
            self._simulator._note_cancellation()
            self._simulator = None


class DiscreteEventSimulator:
    """Priority-queue discrete-event simulator with deterministic tie-breaking."""

    #: Cancelled events tolerated in the queue before it is compacted (and
    #: only once they outnumber the live events) — heavy cancellation, e.g. a
    #: lossy network failing links with thousands of in-flight messages, used
    #: to leave the heap growing without bound.
    COMPACTION_THRESHOLD = 64

    def __init__(self) -> None:
        self._queue: List[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._cancelled_pending = 0
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._queue) - self._cancelled_pending

    def _note_cancellation(self) -> None:
        """Account for one cancelled event; compact when they dominate."""
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= self.COMPACTION_THRESHOLD
            and self._cancelled_pending * 2 >= len(self._queue)
        ):
            self._queue = [event for event in self._queue if not event.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: EventCallback, label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        return self.schedule_at(self._now + delay, callback, label=label)

    def schedule_at(self, time: float, callback: EventCallback, label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` at an exact absolute simulated time (>= now)."""
        if time < self._now:
            raise ValueError("cannot schedule an event in the past")
        event = ScheduledEvent(
            time=time,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
            _simulator=self,
        )
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Stop once the next event's time exceeds this; the clock then
            advances to ``until`` so consecutive windows sweep forward (the
            clock only stays at the last dispatched event when the event
            *budget* ran out with work still inside the window).
        max_events:
            Stop after dispatching this many events (guards against livelock
            in experiments that deliberately misconfigure protocols).

        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        budget_exhausted = False
        while self._queue:
            if max_events is not None and dispatched >= max_events:
                budget_exhausted = True
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            event._simulator = None  # out of the queue: late cancels are inert
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            event.callback(self)
            dispatched += 1
            self.events_dispatched += 1
        if until is not None and self._now < until and not budget_exhausted:
            self._now = until
        return dispatched

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Dispatch every pending event (new events included) up to ``max_events``."""
        return self.run(until=None, max_events=max_events)
