"""A small deterministic discrete-event simulator.

Events are callbacks scheduled at a simulated time; ties are broken by a
monotonically increasing sequence number so runs are fully deterministic for a
given seed and schedule of calls.  The simulator knows nothing about networks
or link reversal — it only orders and dispatches events — which keeps it
reusable for the routing, leader-election and mutual-exclusion layers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

EventCallback = Callable[["DiscreteEventSimulator"], None]


@dataclass(order=True)
class ScheduledEvent:
    """An event in the queue, ordered by ``(time, sequence)``."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when dequeued."""
        self.cancelled = True


class DiscreteEventSimulator:
    """Priority-queue discrete-event simulator with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: List[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: EventCallback, label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        event = ScheduledEvent(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: EventCallback, label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` at an absolute simulated time (>= now)."""
        if time < self._now:
            raise ValueError("cannot schedule an event in the past")
        return self.schedule(time - self._now, callback, label=label)

    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Stop once the next event's time exceeds this (the clock is left at
            the last dispatched event's time).
        max_events:
            Stop after dispatching this many events (guards against livelock
            in experiments that deliberately misconfigure protocols).

        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        while self._queue:
            if max_events is not None and dispatched >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(self)
            dispatched += 1
            self.events_dispatched += 1
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return dispatched

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Dispatch every pending event (new events included) up to ``max_events``."""
        return self.run(until=None, max_events=max_events)
