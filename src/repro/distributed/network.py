"""The asynchronous network: node processes + channels + event loop.

:class:`AsyncLinkReversalNetwork` builds, from a
:class:`~repro.core.graph.LinkReversalInstance`, one
:class:`~repro.distributed.protocol.LinkReversalNodeProcess` per node and a
pair of delay/loss channels per undirected link, wires everything to a
:class:`~repro.distributed.events.DiscreteEventSimulator`, and exposes the
operations the experiments need:

* ``run_to_quiescence()`` — dispatch events until no messages are in flight;
* ``fail_link(u, v)`` / ``add_link(u, v)`` — inject topology changes (the
  nodes are notified immediately, as if the link layer detected the change);
* ``global_orientation()`` — the orientation induced by the *true* heights
  (the quantity whose acyclicity and destination orientation experiment E17
  checks);
* message and reversal statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.graph import LinkReversalInstance, Orientation
from repro.distributed.channel import Channel, Message
from repro.distributed.events import DiscreteEventSimulator
from repro.distributed.protocol import (
    HeightValue,
    LinkReversalNodeProcess,
    ReversalMode,
)

Node = Hashable


#: Named channel-delay models shared by the object network, the compiled
#: engine and the experiment campaigns: name -> (min_delay, max_delay, fifo).
#: ``zero`` and ``fixed`` are deterministic (and therefore FIFO by
#: construction); ``uniform`` draws per-message delays that may reorder
#: messages; ``fifo`` draws the same random delays but clamps delivery so the
#: channel stays first-in-first-out.
DELAY_MODELS: Dict[str, Tuple[float, float, bool]] = {
    "zero": (0.0, 0.0, False),
    "fixed": (1.0, 1.0, False),
    "uniform": (1.0, 2.0, False),
    "fifo": (1.0, 2.0, True),
}


def initial_height_levels(instance: LinkReversalInstance) -> Dict[Node, int]:
    """Initial ``b``-levels consistent with the instance's DAG.

    Longest-path levels from the sources, negated so the destination-directed
    initial orientation is exactly the one induced by heights
    ``(0, max_level - level[u], rank[u])``.  Shared by the object network and
    the compiled :class:`~repro.distributed.fast_network.FastAsyncNetwork` so
    the two engines start from identical heights.
    """
    from repro.core.embedding import topological_order

    order = topological_order(instance)
    level: Dict[Node, int] = {u: 0 for u in instance.nodes}
    for u in order:
        for v in instance.out_nbrs(u):
            level[v] = max(level[v], level[u] + 1)
    max_level = max(level.values(), default=0)
    return {u: max_level - level[u] for u in instance.nodes}


def derive_channel_seed(seed: int, sender_rank: int, receiver_rank: int) -> int:
    """The blake2-derived RNG seed of one directed channel.

    Mirrors the experiment campaigns' seed scheme
    (:func:`repro.experiments.spec.derive_seed`): per-link streams are
    independent of each other but fully determined by ``(seed, link)``, so an
    async run is reproducible and two algorithms handed the same base seed see
    *paired* channel randomness on every link.
    """
    from repro.experiments.spec import derive_seed

    return derive_seed(seed, "channel", sender_rank, receiver_rank)


def derive_link_up_seed(
    seed: int, sender_rank: int, receiver_rank: int, generation: int
) -> int:
    """Seed of a channel created by ``add_link`` (generation-stamped).

    Re-adding the same link gets a fresh stream each time, still derived from
    the network's base seed.
    """
    from repro.experiments.spec import derive_seed

    return derive_seed(seed, "link-up", sender_rank, receiver_rank, generation)


@dataclass
class NetworkReport:
    """Aggregate statistics of an asynchronous run."""

    simulated_time: float
    events_dispatched: int
    messages_sent: int
    messages_delivered: int
    messages_lost: int
    total_reversals: int
    destination_oriented: bool
    acyclic: bool

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"t={self.simulated_time:.1f} events={self.events_dispatched} "
            f"msgs sent/delivered/lost={self.messages_sent}/{self.messages_delivered}/"
            f"{self.messages_lost} reversals={self.total_reversals} "
            f"oriented={self.destination_oriented} acyclic={self.acyclic}"
        )


class AsyncLinkReversalNetwork:
    """A complete asynchronous deployment of height-based link reversal."""

    def __init__(
        self,
        instance: LinkReversalInstance,
        mode: ReversalMode = ReversalMode.PARTIAL,
        min_delay: float = 1.0,
        max_delay: float = 2.0,
        loss_probability: float = 0.0,
        seed: int = 0,
        fifo: bool = False,
    ):
        instance.validate(require_dag=True)
        self.instance = instance
        self.mode = mode
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.loss_probability = loss_probability
        self.fifo = fifo
        self.seed = seed
        self.simulator = DiscreteEventSimulator()
        self._rank = {u: i for i, u in enumerate(instance.nodes)}
        self._channels: Dict[Tuple[Node, Node], Channel] = {}
        self._links: set[FrozenSet[Node]] = set(instance.undirected_edges)
        self._link_generation: Dict[FrozenSet[Node], int] = {}
        # statistics of channels removed by fail_link, so report() stays cumulative
        self._retired_sent = 0
        self._retired_delivered = 0
        self._retired_lost = 0

        initial_heights = self._initial_heights()
        self.processes: Dict[Node, LinkReversalNodeProcess] = {}
        for u in instance.nodes:
            neighbours = instance.nbrs(u)
            self.processes[u] = LinkReversalNodeProcess(
                node=u,
                destination=instance.destination,
                initial_height=initial_heights[u],
                neighbours=neighbours,
                initial_neighbour_heights={v: initial_heights[v] for v in neighbours},
                send=self._make_sender(u),
                mode=mode,
                rank=self._rank[u],
            )

        # per-link seeds are blake2-derived from the base seed (the campaign
        # seed scheme), not consecutive ints: streams are independent per link
        # and paired across algorithms handed the same base seed
        for edge in sorted(self._links, key=lambda e: tuple(sorted(self._rank[x] for x in e))):
            u, v = sorted(edge, key=self._rank.__getitem__)
            for sender, receiver in ((u, v), (v, u)):
                self._channels[(sender, receiver)] = Channel(
                    simulator=self.simulator,
                    sender=sender,
                    receiver=receiver,
                    deliver=self._make_deliverer(receiver),
                    min_delay=min_delay,
                    max_delay=max_delay,
                    loss_probability=loss_probability,
                    seed=derive_channel_seed(
                        seed, self._rank[sender], self._rank[receiver]
                    ),
                    fifo=fifo,
                )

        # every node announces its initial height at time zero
        for u in instance.nodes:
            process = self.processes[u]
            self.simulator.schedule(0.0, lambda _sim, p=process: p.on_start(), label=f"start {u}")

    # ------------------------------------------------------------------
    # wiring helpers
    # ------------------------------------------------------------------
    def _initial_heights(self) -> Dict[Node, HeightValue]:
        """Heights consistent with the initial DAG (longest-path levels, negated)."""
        levels = initial_height_levels(self.instance)
        return {
            u: HeightValue(a=0, b=levels[u], rank=self._rank[u])
            for u in self.instance.nodes
        }

    def _make_sender(self, sender: Node):
        def send(receiver: Node, message: Message) -> None:
            channel = self._channels.get((sender, receiver))
            if channel is None:
                return  # link no longer exists
            channel.send(message)

        return send

    def _make_deliverer(self, receiver: Node):
        def deliver(message: Message) -> None:
            self.processes[receiver].on_message(message)

        return deliver

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run_to_quiescence(self, max_events: int = 1_000_000) -> NetworkReport:
        """Dispatch events until none remain, then summarise the run."""
        self.simulator.run_until_idle(max_events=max_events)
        return self.report()

    def run_for(self, duration: float, max_events: int = 1_000_000) -> NetworkReport:
        """Advance simulated time by ``duration`` and summarise."""
        self.simulator.run(until=self.simulator.now + duration, max_events=max_events)
        return self.report()

    def broadcast_heights(self) -> None:
        """Schedule one anti-entropy round: every node re-announces its height.

        With lossy channels a height update can be lost and never retransmitted,
        which may leave the network short of destination orientation.  Real
        deployments run periodic beacons; this method models one beacon round.
        Call it (followed by :meth:`run_to_quiescence`) until the network
        reports destination orientation.
        """
        for u in self.instance.nodes:
            process = self.processes[u]
            self.simulator.schedule(
                0.0, lambda _sim, p=process: p._broadcast_height(), label=f"beacon {u}"
            )

    def run_with_beacons(
        self, max_rounds: int = 10, max_events_per_round: int = 100_000
    ) -> NetworkReport:
        """Alternate quiescence runs and beacon rounds until destination oriented.

        Returns the report after the final round; gives up (returning the last
        report) after ``max_rounds`` beacon rounds, which only happens if the
        network is partitioned.
        """
        report = self.run_to_quiescence(max_events=max_events_per_round)
        rounds = 0
        while not report.destination_oriented and rounds < max_rounds:
            self.broadcast_heights()
            report = self.run_to_quiescence(max_events=max_events_per_round)
            rounds += 1
        return report

    # ------------------------------------------------------------------
    # topology changes
    # ------------------------------------------------------------------
    def fail_link(self, u: Node, v: Node) -> None:
        """Remove the link ``{u, v}``: channels go down, endpoints are notified."""
        edge = frozenset((u, v))
        if edge not in self._links:
            raise ValueError(f"{u!r}-{v!r} is not a current link")
        self._links.discard(edge)
        for pair in ((u, v), (v, u)):
            channel = self._channels.pop(pair, None)
            if channel is not None:
                channel.fail()
                self._retired_sent += channel.stats.sent
                self._retired_delivered += channel.stats.delivered
                self._retired_lost += channel.stats.in_flight_loss
        self.processes[u].on_link_down(v)
        self.processes[v].on_link_down(u)

    def add_link(self, u: Node, v: Node) -> None:
        """Add a new link ``{u, v}`` with fresh channels; endpoints are notified.

        Channel seeds are derived from the network's base seed and a
        per-link *generation* counter, so re-adding a link after a failure
        gets a fresh, reproducible random stream.
        """
        edge = frozenset((u, v))
        if edge in self._links:
            return
        self._links.add(edge)
        generation = self._link_generation.get(edge, 0) + 1
        self._link_generation[edge] = generation
        for sender, receiver in ((u, v), (v, u)):
            self._channels[(sender, receiver)] = Channel(
                simulator=self.simulator,
                sender=sender,
                receiver=receiver,
                deliver=self._make_deliverer(receiver),
                min_delay=self.min_delay,
                max_delay=self.max_delay,
                loss_probability=self.loss_probability,
                seed=derive_link_up_seed(
                    self.seed, self._rank[sender], self._rank[receiver], generation
                ),
                fifo=self.fifo,
            )
        self.processes[u].on_link_up(v)
        self.processes[v].on_link_up(u)

    def current_links(self) -> FrozenSet[FrozenSet[Node]]:
        """The current undirected link set."""
        return frozenset(self._links)

    # ------------------------------------------------------------------
    # global views (for verification)
    # ------------------------------------------------------------------
    def true_heights(self) -> Dict[Node, HeightValue]:
        """The actual current height of every node (not any node's local view)."""
        return {u: p.height for u, p in self.processes.items()}

    def global_directed_edges(self) -> Tuple[Tuple[Node, Node], ...]:
        """The orientation induced by the true heights on the current link set."""
        heights = self.true_heights()
        edges: List[Tuple[Node, Node]] = []
        for edge in sorted(self._links, key=lambda e: tuple(sorted(self._rank[x] for x in e))):
            u, v = sorted(edge, key=self._rank.__getitem__)
            if heights[u] > heights[v]:
                edges.append((u, v))
            else:
                edges.append((v, u))
        return tuple(edges)

    def global_orientation(self) -> Optional[Orientation]:
        """The global orientation as an :class:`Orientation`, if the link set is unchanged.

        When links have been failed or added the orientation no longer matches
        the original instance's edge set, so ``None`` is returned and callers
        should use :meth:`global_directed_edges` / :meth:`is_destination_oriented`
        instead.
        """
        if self._links != set(self.instance.undirected_edges):
            return None
        return Orientation.from_directed_edges(self.instance, self.global_directed_edges())

    def is_acyclic(self) -> bool:
        """Heights are totally ordered, so the induced orientation is always acyclic."""
        heights = self.true_heights()
        return len({(h.a, h.b, h.rank) for h in heights.values()}) == len(heights)

    def is_destination_oriented(self) -> bool:
        """Whether every node can currently reach the destination along the induced edges."""
        destination = self.instance.destination
        predecessors: Dict[Node, List[Node]] = {u: [] for u in self.instance.nodes}
        for tail, head in self.global_directed_edges():
            predecessors[head].append(tail)
        reached = {destination}
        frontier = [destination]
        while frontier:
            u = frontier.pop()
            for v in predecessors[u]:
                if v not in reached:
                    reached.add(v)
                    frontier.append(v)
        return len(reached) == len(self.instance.nodes)

    # ------------------------------------------------------------------
    def report(self) -> NetworkReport:
        """Aggregate statistics of the run so far."""
        sent = self._retired_sent + sum(c.stats.sent for c in self._channels.values())
        delivered = self._retired_delivered + sum(
            c.stats.delivered for c in self._channels.values()
        )
        lost = self._retired_lost + sum(c.stats.in_flight_loss for c in self._channels.values())
        reversals = sum(p.reversal_count for p in self.processes.values())
        return NetworkReport(
            simulated_time=self.simulator.now,
            events_dispatched=self.simulator.events_dispatched,
            messages_sent=sent,
            messages_delivered=delivered,
            messages_lost=lost,
            total_reversals=reversals,
            destination_oriented=self.is_destination_oriented(),
            acyclic=self.is_acyclic(),
        )
