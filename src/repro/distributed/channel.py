"""Point-to-point message channels with delay and loss.

Each undirected link of the network is modelled by two directed channels (one
per direction).  A channel delivers messages after a delay drawn uniformly
from ``[min_delay, max_delay]`` and drops each message independently with
``loss_probability``.  Channels keep per-link statistics so the benchmarks can
report message complexity alongside convergence time.

Channels can be taken *down* (link failure) and brought back *up*; messages
sent while a channel is down are counted as dropped, and messages already in
flight when the channel goes down are lost as well — the usual fail-prone
link model of the MANET literature.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, List, Optional

from repro.distributed.events import DiscreteEventSimulator, ScheduledEvent

Node = Hashable


@dataclass(frozen=True)
class Message:
    """A protocol message travelling on a channel."""

    sender: Node
    receiver: Node
    kind: str
    payload: Any = None

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.kind}({self.sender} -> {self.receiver}: {self.payload!r})"


@dataclass
class ChannelStats:
    """Per-channel delivery statistics."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    lost_to_failure: int = 0

    @property
    def in_flight_loss(self) -> int:
        """Messages lost for any reason."""
        return self.dropped + self.lost_to_failure


class Channel:
    """A unidirectional, delay- and loss-prone channel between two nodes.

    With ``fifo=True`` the channel additionally guarantees FIFO delivery: a
    message's delivery time is clamped to be no earlier than the previously
    scheduled delivery on this channel, so randomly drawn delays can no
    longer reorder messages (the classic reliable-FIFO link abstraction).
    """

    def __init__(
        self,
        simulator: DiscreteEventSimulator,
        sender: Node,
        receiver: Node,
        deliver: Callable[[Message], None],
        min_delay: float = 1.0,
        max_delay: float = 1.0,
        loss_probability: float = 0.0,
        seed: int = 0,
        fifo: bool = False,
    ):
        if min_delay < 0 or max_delay < min_delay:
            raise ValueError("delays must satisfy 0 <= min_delay <= max_delay")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.simulator = simulator
        self.sender = sender
        self.receiver = receiver
        self._deliver = deliver
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.loss_probability = loss_probability
        self.fifo = fifo
        self._last_scheduled_delivery = 0.0
        self._rng = random.Random(seed)
        self.up = True
        self.stats = ChannelStats()
        self._in_flight: List[ScheduledEvent] = []

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send a message; it is delivered later unless lost or the link is down."""
        self.stats.sent += 1
        if not self.up:
            self.stats.lost_to_failure += 1
            return
        if self.loss_probability > 0 and self._rng.random() < self.loss_probability:
            self.stats.dropped += 1
            return
        if self.max_delay > self.min_delay:
            delay = self._rng.uniform(self.min_delay, self.max_delay)
        else:
            delay = self.min_delay
        delivery_time = self.simulator.now + delay
        if self.fifo and delivery_time < self._last_scheduled_delivery:
            delivery_time = self._last_scheduled_delivery
        self._last_scheduled_delivery = delivery_time

        def deliver_event(_sim: DiscreteEventSimulator, _message=message) -> None:
            self.stats.delivered += 1
            # delivered messages are no longer in flight: without this a later
            # fail() would re-count them as lost_to_failure
            self._in_flight.remove(event)
            self._deliver(_message)

        event = self.simulator.schedule_at(
            delivery_time, deliver_event, label=f"deliver {message.kind}"
        )
        self._in_flight.append(event)

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Take the link down, losing every in-flight message."""
        self.up = False
        for event in self._in_flight:
            if not event.cancelled:
                event.cancel()
                self.stats.lost_to_failure += 1
        self._in_flight.clear()

    def repair(self) -> None:
        """Bring the link back up."""
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        state = "up" if self.up else "down"
        return f"<Channel {self.sender}->{self.receiver} {state} sent={self.stats.sent}>"
