"""Asynchronous, message-passing execution of link reversal.

The automata of the paper are *global*: one action reverses edges atomically
on both endpoints.  Real link-reversal routing (Gafni–Bertsekas, TORA) runs on
a network where each node only has local state and learns about its
neighbours' changes through messages.  This subpackage provides that
substrate:

* :mod:`repro.distributed.events` — a deterministic discrete-event simulator
  (priority queue of timestamped events, seeded tie-breaking);
* :mod:`repro.distributed.channel` — point-to-point channels with configurable
  delay and loss, plus per-link statistics;
* :mod:`repro.distributed.protocol` — the height-based asynchronous link
  reversal protocol (full or partial mode) run by every node: a node that
  discovers it is a local sink raises its height and broadcasts the new value
  to its neighbours;
* :mod:`repro.distributed.network` — glue that wires node processes, channels
  and the simulator together, injects link failures, and extracts the global
  orientation for verification (acyclicity, destination orientation —
  experiment E17);
* :mod:`repro.distributed.fast_network` — the compiled twin of the network:
  packed int heights, a flat tuple event heap with ring-buffer FIFO
  channels, and an inlined delivery loop, differentially pinned to the
  object network (the documented oracle) and ~10x faster on quiescence
  workloads.  This is what campaign-scale async sweeps run on.

Edge directions in the asynchronous protocol are *derived* from node heights
(exactly as in the original Gafni–Bertsekas formulation and in TORA), so the
global graph, evaluated at any instant with the true heights, is always
acyclic; what the simulation exercises is convergence and message complexity
under delay, loss and topology changes.
"""

from repro.distributed.events import DiscreteEventSimulator, ScheduledEvent
from repro.distributed.channel import Channel, ChannelStats, Message
from repro.distributed.protocol import (
    HeightValue,
    LinkReversalNodeProcess,
    ReversalMode,
)
from repro.distributed.network import (
    DELAY_MODELS,
    AsyncLinkReversalNetwork,
    NetworkReport,
    derive_channel_seed,
)
from repro.distributed.fast_network import FastAsyncNetwork, pack_height, unpack_height

__all__ = [
    "AsyncLinkReversalNetwork",
    "Channel",
    "ChannelStats",
    "DELAY_MODELS",
    "DiscreteEventSimulator",
    "FastAsyncNetwork",
    "HeightValue",
    "LinkReversalNodeProcess",
    "Message",
    "NetworkReport",
    "ReversalMode",
    "ScheduledEvent",
    "derive_channel_seed",
    "pack_height",
    "unpack_height",
]
