"""The asynchronous height-based link-reversal node protocol.

In the distributed setting a node cannot atomically flip an edge shared with
a neighbour, so practical link-reversal protocols (Gafni–Bertsekas's original
formulation, and TORA after it) derive edge directions from per-node
*heights*: the edge between ``u`` and ``v`` points from the higher height to
the lower one, and a node changes the direction of its incident edges simply
by raising its own height and telling its neighbours.

Each :class:`LinkReversalNodeProcess` keeps:

* its own height,
* its latest knowledge of each neighbour's height (updated by ``HEIGHT``
  messages),
* the set of currently usable links to neighbours.

Whenever a node observes that it is a *local sink* — its height is lower than
every known neighbour height and it is not the destination — it raises its
height according to the configured :class:`ReversalMode`:

* ``FULL`` — pair heights, new ``a`` is one more than the maximum neighbour
  ``a`` (every incident edge reverses);
* ``PARTIAL`` — triple heights with the Gafni–Bertsekas partial-reversal
  update (only the edges to the lowest neighbours reverse).

The protocol is deliberately conservative about staleness: a node acts only on
the heights it has heard, so transient disagreement is possible while messages
are in flight; the network layer (:mod:`repro.distributed.network`) evaluates
the *true* global heights when checking acyclicity and destination
orientation, which is the standard correctness argument for height-based
reversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.distributed.channel import Message

Node = Hashable


class ReversalMode(Enum):
    """Which reversal rule the asynchronous protocol uses when a node is a sink."""

    FULL = "full"
    PARTIAL = "partial"


@dataclass(frozen=True, order=True)
class HeightValue:
    """A totally ordered node height ``(a, b, rank)``.

    For ``FULL`` mode only ``a`` and ``rank`` are meaningful (``b`` stays 0);
    for ``PARTIAL`` mode the triple implements the Gafni–Bertsekas partial
    reversal update.  The total order is lexicographic, so any snapshot of
    true heights induces an acyclic orientation.
    """

    a: int
    b: int
    rank: int


#: Signature of the send callback handed to a node process by the network:
#: ``send(neighbour, message)``.
SendFunction = Callable[[Node, Message], None]

#: Message kinds used by the protocol.
HEIGHT_MESSAGE = "HEIGHT"


class LinkReversalNodeProcess:
    """The per-node state machine of asynchronous height-based link reversal."""

    def __init__(
        self,
        node: Node,
        destination: Node,
        initial_height: HeightValue,
        neighbours: FrozenSet[Node],
        initial_neighbour_heights: Dict[Node, HeightValue],
        send: SendFunction,
        mode: ReversalMode = ReversalMode.PARTIAL,
        rank: Optional[int] = None,
    ):
        self.node = node
        self.destination = destination
        self.mode = mode
        self.height = initial_height
        self.rank = initial_height.rank if rank is None else rank
        self.neighbours: Set[Node] = set(neighbours)
        self.neighbour_heights: Dict[Node, HeightValue] = dict(initial_neighbour_heights)
        self._send = send
        self.reversal_count = 0
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # local view
    # ------------------------------------------------------------------
    def is_local_sink(self) -> bool:
        """Whether, according to its local knowledge, every incident edge points at this node."""
        if self.node == self.destination or not self.neighbours:
            return False
        return all(
            self.neighbour_heights[v] > self.height
            for v in self.neighbours
            if v in self.neighbour_heights
        ) and all(v in self.neighbour_heights for v in self.neighbours)

    def local_outgoing(self) -> FrozenSet[Node]:
        """Neighbours the node currently believes it has an outgoing edge to."""
        return frozenset(
            v
            for v in self.neighbours
            if v in self.neighbour_heights and self.neighbour_heights[v] < self.height
        )

    # ------------------------------------------------------------------
    # event handlers (called by the network layer)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Announce the initial height and react if already a sink."""
        self._broadcast_height()
        self.maybe_reverse()

    def on_message(self, message: Message) -> None:
        """Handle a received protocol message."""
        if message.kind != HEIGHT_MESSAGE:
            return
        sender = message.sender
        if sender not in self.neighbours:
            # stale message from a link that has since failed
            return
        height = message.payload
        known = self.neighbour_heights.get(sender)
        if known is None or height > known:
            self.neighbour_heights[sender] = height
        self.maybe_reverse()

    def on_link_down(self, neighbour: Node) -> None:
        """A link failed: forget the neighbour and re-evaluate sink-ness."""
        self.neighbours.discard(neighbour)
        self.neighbour_heights.pop(neighbour, None)
        self.maybe_reverse()

    def on_link_up(self, neighbour: Node) -> None:
        """A link (re)appeared: add the neighbour and advertise our height to it."""
        self.neighbours.add(neighbour)
        self.messages_sent += 1
        self._send(neighbour, Message(self.node, neighbour, HEIGHT_MESSAGE, self.height))
        self.maybe_reverse()

    # ------------------------------------------------------------------
    # the reversal rule
    # ------------------------------------------------------------------
    def maybe_reverse(self) -> None:
        """If the node is a local sink, raise its height and broadcast it."""
        # A node may need several reversals only after new information arrives;
        # one raise always makes it non-sink w.r.t. current knowledge, so a
        # single pass suffices here.
        if not self.is_local_sink():
            return
        self.height = self._raised_height()
        self.reversal_count += 1
        self._broadcast_height()

    def _raised_height(self) -> HeightValue:
        known = [self.neighbour_heights[v] for v in self.neighbours if v in self.neighbour_heights]
        if not known:
            return self.height
        if self.mode is ReversalMode.FULL:
            max_a = max(h.a for h in known)
            return HeightValue(a=max_a + 1, b=0, rank=self.rank)
        # PARTIAL: Gafni–Bertsekas triple update
        min_a = min(h.a for h in known)
        new_a = min_a + 1
        same_level = [h.b for h in known if h.a == new_a]
        new_b = (min(same_level) - 1) if same_level else self.height.b
        return HeightValue(a=new_a, b=new_b, rank=self.rank)

    def _broadcast_height(self) -> None:
        for v in sorted(self.neighbours, key=repr):
            self.messages_sent += 1
            self._send(v, Message(self.node, v, HEIGHT_MESSAGE, self.height))
