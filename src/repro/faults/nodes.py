"""Seeded crash-stop node selection for the ``node_faults`` scenario axis.

The protocol-level half of the fault plane: a scenario with
``node_faults > 0`` crash-stops that many non-destination nodes — they keep
their (announced) heights but silently stop reversing.  Selection is a pure
function of the topology seed, so every algorithm/scheduler cell of one
replicate — and every engine executing the same spec — kills the *same*
nodes, keeping work comparisons paired exactly like the topology itself.
"""

from __future__ import annotations

import random
from typing import FrozenSet

from repro.experiments.spec import derive_seed


def select_crashed_ids(
    node_count: int, destination_id: int, count: int, topology_seed: int
) -> FrozenSet[int]:
    """The node ids crash-stopped by a ``node_faults=count`` scenario.

    Ids index the instance's node tuple (the shared id space of the kernel
    and async engines).  The destination never crashes — a dead destination
    makes every convergence question vacuous.
    """
    candidates = [i for i in range(node_count) if i != destination_id]
    if count >= len(candidates):
        raise ValueError(
            f"cannot crash {count} of {node_count} nodes "
            "(the destination and at least one live node must survive)"
        )
    rng = random.Random(derive_seed(topology_seed, "node-faults"))
    return frozenset(rng.sample(candidates, count))
