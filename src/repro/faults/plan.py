"""Deterministic, seeded fault plans for chaos-testing the campaign executor.

A :class:`FaultPlan` decides — as a pure function of its seed, a chunk index
and a dispatch attempt — whether an executor worker should *crash* (hard
process exit), *hang* (sleep until the watchdog kills it), run *slow*
(bounded extra latency) or *corrupt* its returned records.  Because the
decision is derived with :func:`~repro.experiments.spec.derive_seed` rather
than ambient randomness, the same plan injects the same faults on every
machine and every re-run, which is what lets CI compare a chaos campaign's
results field-for-field against its fault-free twin.

The parent process evaluates the same plan the workers do: a worker that
crashes or hangs can never report its own fault back, so fault accounting
(``faults.injected``) happens on the dispatch side at submit time.

Plans cross the process boundary through the :data:`FAULT_PLAN_ENV`
environment variable (JSON; see :meth:`FaultPlan.to_json`), which the pool
worker initializer reads (:mod:`repro.faults.injector`).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.experiments.spec import derive_seed

#: The injectable fault kinds, in the order probabilities stack.
FAULT_KINDS = ("crash", "hang", "slow", "corrupt")

#: Environment variable carrying a JSON-encoded plan into pooled workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, per-chunk fault schedule for the executor's worker pool.

    ``crash`` / ``hang`` / ``slow`` / ``corrupt`` are per-chunk injection
    probabilities (they stack: their sum must stay <= 1).  ``strikes`` bounds
    how many dispatch *attempts* of one chunk are faulted — with the default
    of 1 only the first attempt can fail, so a retrying executor always
    recovers and a chaos campaign's stored records equal the fault-free
    twin's.  ``overrides`` pins specific chunk indices to a fault kind
    (``"none"`` exempts a chunk), bypassing the probability roll.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    slow: float = 0.0
    corrupt: float = 0.0
    #: Attempts of one chunk that may be faulted (attempt >= strikes is safe).
    strikes: int = 1
    #: Extra latency of a ``slow`` fault, seconds.
    slow_s: float = 0.05
    #: Explicit ``{chunk_index: kind}`` pins (kind ``"none"`` exempts).
    overrides: Mapping[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "overrides",
            {int(k): str(v) for k, v in dict(self.overrides).items()},
        )

    def validate(self) -> None:
        """Raise ``ValueError`` when the plan cannot be injected as written."""
        rates = {kind: getattr(self, kind) for kind in FAULT_KINDS}
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {kind} must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.strikes < 0:
            raise ValueError("strikes must be non-negative")
        if self.slow_s < 0:
            raise ValueError("slow_s must be non-negative")
        for index, kind in self.overrides.items():
            if index < 0:
                raise ValueError(f"override chunk index must be >= 0, got {index}")
            if kind != "none" and kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in override for chunk {index}; "
                    f"choose from none, {', '.join(FAULT_KINDS)}"
                )

    def any_faults(self) -> bool:
        """Whether this plan can inject anything at all."""
        if self.strikes <= 0:
            return False
        if any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS):
            return True
        return any(kind != "none" for kind in self.overrides.values())

    def fault_for(self, chunk_index: int, attempt: int = 0) -> Optional[str]:
        """The fault injected into ``(chunk_index, attempt)``, or ``None``.

        Pure and deterministic: the roll derives from
        ``(seed, chunk_index, attempt)`` alone, so the dispatching parent and
        the pooled worker agree on every injection without communicating.
        """
        if attempt >= self.strikes:
            return None
        pinned = self.overrides.get(chunk_index)
        if pinned is not None:
            return None if pinned == "none" else pinned
        roll = random.Random(
            derive_seed(self.seed, "fault", chunk_index, attempt)
        ).random()
        threshold = 0.0
        for kind in FAULT_KINDS:
            threshold += getattr(self, kind)
            if roll < threshold:
                return kind
        return None

    # ------------------------------------------------------------------
    # plain-data / environment round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (overrides keyed by stringified index)."""
        return {
            "seed": self.seed,
            "crash": self.crash,
            "hang": self.hang,
            "slow": self.slow,
            "corrupt": self.corrupt,
            "strikes": self.strikes,
            "slow_s": self.slow_s,
            "overrides": {str(k): v for k, v in sorted(self.overrides.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (extra keys ignored)."""
        return cls(
            seed=int(data.get("seed", 0)),
            crash=float(data.get("crash", 0.0)),
            hang=float(data.get("hang", 0.0)),
            slow=float(data.get("slow", 0.0)),
            corrupt=float(data.get("corrupt", 0.0)),
            strikes=int(data.get("strikes", 1)),
            slow_s=float(data.get("slow_s", 0.05)),
            overrides=data.get("overrides", {}),
        )

    def to_json(self) -> str:
        """Compact JSON form — what :data:`FAULT_PLAN_ENV` carries."""
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
