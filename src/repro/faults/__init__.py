"""The fault plane: seeded chaos injection and crash-stop protocol faults.

Two halves, one seed discipline:

* **harness faults** — :class:`~repro.faults.plan.FaultPlan` schedules
  worker crashes, hangs, slowdowns and corrupted results per executor chunk
  (armed in pooled workers via :mod:`repro.faults.injector`); the executor's
  watchdog/retry machinery is what they exercise;
* **protocol faults** — :func:`~repro.faults.nodes.select_crashed_ids`
  picks the crash-stop nodes of a ``node_faults`` scenario, paired across
  algorithms and engines through the topology seed.
"""

from repro.faults.nodes import select_crashed_ids
from repro.faults.plan import FAULT_KINDS, FAULT_PLAN_ENV, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "select_crashed_ids",
]
