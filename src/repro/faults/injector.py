"""Worker-side fault arming and heartbeat stamping.

The executor's process pool runs :func:`arm_pool_worker` as its worker
initializer.  It does two things:

* reads :data:`~repro.faults.plan.FAULT_PLAN_ENV` and arms the decoded
  :class:`~repro.faults.plan.FaultPlan` for this worker process — faults are
  only ever *armed in pooled workers*, never in the inline (``workers <= 1``)
  path, so a crash/hang fault can never take down the parent process;
* stores the shared heartbeat/pid arrays the watchdog reads, so
  :func:`beat` can stamp liveness per chunk and per scenario.

Everything here is module-global by design: a worker process serves chunks
one at a time, and the initializer runs exactly once per worker.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Any, Optional, Sequence

from repro.faults.plan import FAULT_PLAN_ENV, FaultPlan

logger = logging.getLogger(__name__)

#: How long a ``hang`` fault sleeps.  Effectively forever on the executor's
#: timescale — a hung worker is *not* cooperative, so only the parent-side
#: watchdog (or the end of the campaign process) ends it.
HANG_SLEEP_S = 3600.0

#: Marker prefix a ``corrupt`` fault stamps into record run_ids.  The parent
#: detects the mangled ids against the chunk's spec ids and re-dispatches.
CORRUPT_MARKER = "__corrupt__"

_PLAN: Optional[FaultPlan] = None
_IN_POOLED_WORKER = False
_HEARTBEATS: Optional[Any] = None
_PIDS: Optional[Any] = None


def arm_pool_worker(heartbeats: Optional[Any] = None, pids: Optional[Any] = None) -> None:
    """Pool-worker initializer: arm the env-carried fault plan + heartbeats."""
    global _PLAN, _IN_POOLED_WORKER, _HEARTBEATS, _PIDS
    _IN_POOLED_WORKER = True
    _HEARTBEATS = heartbeats
    _PIDS = pids
    raw = os.environ.get(FAULT_PLAN_ENV)
    if raw:
        try:
            _PLAN = FaultPlan.from_json(raw)
        except (ValueError, TypeError, KeyError):
            logger.warning("ignoring malformed %s payload", FAULT_PLAN_ENV)
            _PLAN = None
    else:
        _PLAN = None


def disarm() -> None:
    """Reset the module globals (tests re-arming inside one process)."""
    global _PLAN, _IN_POOLED_WORKER, _HEARTBEATS, _PIDS
    _PLAN = None
    _IN_POOLED_WORKER = False
    _HEARTBEATS = None
    _PIDS = None


def active_plan() -> Optional[FaultPlan]:
    """The armed plan — ``None`` outside pooled workers (inline never injects)."""
    if not _IN_POOLED_WORKER or _PLAN is None or not _PLAN.any_faults():
        return None
    return _PLAN


def beat(chunk_index: Optional[int]) -> None:
    """Stamp this worker's liveness for ``chunk_index`` (watchdog heartbeat).

    ``time.monotonic()`` reads ``CLOCK_MONOTONIC``, which is system-wide on
    the supported platforms, so the parent's staleness comparison against its
    own monotonic clock is meaningful.
    """
    if (
        _HEARTBEATS is not None
        and chunk_index is not None
        and 0 <= chunk_index < len(_HEARTBEATS)
    ):
        _HEARTBEATS[chunk_index] = time.monotonic()
        if _PIDS is not None:
            _PIDS[chunk_index] = os.getpid()


def inject_before_chunk(fault: Optional[str], plan: FaultPlan) -> None:
    """Perform a ``crash`` / ``hang`` / ``slow`` fault before a chunk runs.

    ``corrupt`` is a post-execution fault (see :func:`corrupt_records`) and
    falls through here untouched.
    """
    if fault == "crash":
        logger.debug("fault injection: crashing worker %d", os.getpid())
        os._exit(43)
    elif fault == "hang":
        logger.debug("fault injection: hanging worker %d", os.getpid())
        time.sleep(HANG_SLEEP_S)
    elif fault == "slow":
        time.sleep(plan.slow_s)


def corrupt_records(records: Sequence[dict]) -> None:
    """Mangle a chunk's result records in place (the ``corrupt`` fault).

    The run_ids are replaced wholesale, so the parent's expected-id check
    cannot miss the corruption, and a metric field is poisoned so even an
    id-ignoring consumer would see nonsense rather than silently-wrong data.
    """
    for record in records:
        record["run_id"] = f"{CORRUPT_MARKER}{record.get('run_id')}"
        record["node_steps"] = -1
