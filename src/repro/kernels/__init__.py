"""Compiled int-signature kernels shared by the model checker and simulator.

PR 1 gave every automaton state a compact **int signature** (the
orientation's edge-reversal bitmask with per-node bookkeeping packed into the
high bits).  This package holds everything that computes *directly on those
ints* with no state objects on the hot path:

* :mod:`repro.kernels.signature` — the compiled successor kernels
  (:class:`SignatureExpander` and the PR / OneStepPR / NewPR / FR
  specialisations) plus the mask-level structural checks and twin-node
  symmetry machinery.  The exhaustive model checker
  (:mod:`repro.exploration`) and the simulation engine both build on these.
* :mod:`repro.kernels.schedulers` — mask-level scheduler choice logic: every
  scheduler in :data:`repro.schedulers.SCHEDULER_FACTORIES` has a twin here
  that picks actors from the simulator's incremental sink-id set without
  unpacking a single neighbour set, consuming randomness identically to its
  object-level counterpart so seeded runs are bit-for-bit reproducible
  across engines.
* :mod:`repro.kernels.vector` — batch twins of the compiled expanders:
  :class:`VectorExpander` takes a numpy array of packed signatures and
  returns the whole successor frontier via bitwise column operations, in
  exact scalar generation order.  The model checker's vectorised frontier
  path (:class:`repro.exploration.ModelChecker` with ``vectorized="auto"``)
  builds on these, falling back to the scalar expanders whenever signatures
  exceed the 64-bit packable word width.
* :mod:`repro.kernels.simulator` — :class:`SignatureSimulator`, the
  scenario-execution fast path: convergence phases, work/round accounting
  via signature XOR and deadline handling, all as pure int operations; plus
  the per-process :class:`KernelCache` that amortises kernel compilation
  across the runs of a campaign chunk.

The object-level automata remain the *documented oracle*: differential tests
assert field-for-field equality between a kernel run and the legacy
object-path run for every algorithm/scheduler/churn combination.
"""

from repro.kernels.signature import (
    FullReversalExpander,
    NewPRExpander,
    OneStepPRExpander,
    PartialReversalExpander,
    SignatureExpander,
    compile_expander,
    mask_directed_edges,
    mask_final_state_checks,
    mask_is_acyclic,
    mask_is_destination_oriented,
    shard_of,
    twin_node_classes,
)
from repro.kernels.schedulers import (
    MASK_SCHEDULER_FACTORIES,
    MaskScheduler,
    make_mask_scheduler,
)
from repro.kernels.batch import BatchLaneOutcome, BatchSimulator
from repro.kernels.vector import (
    BatchExpansion,
    VectorExpander,
    compile_vector_expander,
    decode_token,
    mask_is_acyclic_batch,
    mask_is_destination_oriented_batch,
    shard_of_batch,
)
from repro.kernels.simulator import (
    KernelCache,
    PhaseOutcome,
    RoundTally,
    SignatureSimulator,
    WorkTally,
    cache_capacity_from_env,
)

__all__ = [
    "BatchExpansion",
    "BatchLaneOutcome",
    "BatchSimulator",
    "FullReversalExpander",
    "VectorExpander",
    "compile_vector_expander",
    "decode_token",
    "mask_is_acyclic_batch",
    "mask_is_destination_oriented_batch",
    "shard_of_batch",
    "KernelCache",
    "cache_capacity_from_env",
    "MASK_SCHEDULER_FACTORIES",
    "MaskScheduler",
    "NewPRExpander",
    "OneStepPRExpander",
    "PartialReversalExpander",
    "PhaseOutcome",
    "RoundTally",
    "SignatureExpander",
    "SignatureSimulator",
    "WorkTally",
    "compile_expander",
    "make_mask_scheduler",
    "mask_directed_edges",
    "mask_final_state_checks",
    "mask_is_acyclic",
    "mask_is_destination_oriented",
    "shard_of",
    "twin_node_classes",
]
