"""Compiled signature-space successor kernels for the link-reversal automata.

Every automaton state has a compact **int signature** (the orientation's
edge-reversal bitmask, with per-node bookkeeping packed into the high bits).
This module makes those ints the only thing a hot path touches:

:class:`SignatureExpander`
    A compiled successor kernel for one automaton: ``successors(sig)`` maps an
    int signature directly to its successor signatures, and ``step(sig, i)``
    applies one ``reverse(node_i)`` — both with pure integer arithmetic: no
    :class:`~repro.core.graph.Orientation`, no state objects, no
    per-transition allocation beyond the result ints.  Kernels exist for FR,
    OneStepPR, PR (subset actions) and NewPR; states are only re-materialised
    (:meth:`SignatureExpander.state_for`) when a predicate needs one or a
    counterexample is replayed.

Both the exhaustive model checker (:mod:`repro.exploration`) and the
scenario simulator (:mod:`repro.kernels.simulator`) are built on these
kernels; the module lives here — below both — so neither subsystem depends
on the other.

Twin-node symmetry reduction
    :meth:`SignatureExpander.canonicalize` maps a signature to a canonical
    representative of its orbit under permutations of *structurally
    equivalent* nodes — non-destination nodes with identical neighbour sets
    and identical initial in-neighbour sets ("twins", e.g. the leaves of a
    star).  Any such permutation is an automorphism of the initial directed
    graph that commutes with every automaton's transition function, so the
    canonical image of a reachable state is itself reachable.  Exploration
    over canonical representatives therefore visits at least one member of
    every reachable orbit (induction over executions: if ``σ(s)`` is visited
    and ``s → s'``, then expanding ``σ(s)`` adds ``canonicalize(σ(s'))``),
    which makes the reduction *sound* for checking label-invariant
    predicates.  Caveats: when several twin classes overlap (members of one
    class adjacent to members of another) the per-class sort is not a perfect
    orbit quotient — it may keep more than one representative per orbit
    (never fewer); and predicates that depend on node labels (e.g. the
    embedding-based NewPR invariants 4.1/4.2) are evaluated on the
    representative only, which is still a reachable state but not the
    specific orbit member first encountered.
"""

from __future__ import annotations

import abc
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.automata.ioa import Action, IOAutomaton
from repro.core.base import Reverse
from repro.core.full_reversal import FRState, FullReversal
from repro.core.graph import DirectedEdge, LinkReversalInstance, Orientation
from repro.core.new_pr import NewPartialReversal, NewPRState
from repro.core.one_step_pr import OneStepPartialReversal, OneStepPRState
from repro.core.pr import PartialReversal, PRState, ReverseSet

#: Bits reserved per node for the NewPR step counter inside the int signature.
#: Counts are bounded by the per-node work bound (O(n) for NewPR), so 16 bits
#: cover every instance the checker can exhaust; overflow raises.
_COUNT_BITS = 16
_COUNT_MASK = (1 << _COUNT_BITS) - 1


def shard_of(signature: Hashable, shards: int) -> int:
    """Deterministic owner shard of a signature.

    Uses ``hash`` — deterministic across processes for ints and tuples of
    ints (hash randomisation only affects str/bytes), which is exactly the
    signature vocabulary of the compiled expanders.
    """
    return hash(signature) % shards


# ----------------------------------------------------------------------
# mask-level structural checks (no Orientation materialisation)
# ----------------------------------------------------------------------
def mask_is_acyclic(instance: LinkReversalInstance, mask: int) -> bool:
    """Whether the orientation encoded by ``mask`` is a DAG (Kahn over ids)."""
    n = instance.node_count
    succ: List[List[int]] = [[] for _ in range(n)]
    indegree = [0] * n
    for e, (tail_id, head_id) in enumerate(instance._edge_node_ids):
        if (mask >> e) & 1:
            tail_id, head_id = head_id, tail_id
        succ[tail_id].append(head_id)
        indegree[head_id] += 1
    queue = [i for i in range(n) if indegree[i] == 0]
    removed = 0
    while queue:
        i = queue.pop()
        removed += 1
        for j in succ[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                queue.append(j)
    return removed == n


def mask_is_destination_oriented(instance: LinkReversalInstance, mask: int) -> bool:
    """Whether every node reaches the destination in the ``mask`` orientation."""
    n = instance.node_count
    pred: List[List[int]] = [[] for _ in range(n)]
    for e, (tail_id, head_id) in enumerate(instance._edge_node_ids):
        if (mask >> e) & 1:
            tail_id, head_id = head_id, tail_id
        pred[head_id].append(tail_id)
    reached = [False] * n
    dest = instance._dest_id
    reached[dest] = True
    frontier = [dest]
    count = 1
    while frontier:
        i = frontier.pop()
        for j in pred[i]:
            if not reached[j]:
                reached[j] = True
                count += 1
                frontier.append(j)
    return count == n


def mask_final_state_checks(
    instance: LinkReversalInstance, mask: int
) -> Tuple[bool, bool]:
    """``(is_acyclic, is_destination_oriented)`` of the ``mask`` orientation.

    The two checks share the successor/predecessor adjacency, so computing
    them together halves the allocation work of calling
    :func:`mask_is_acyclic` and :func:`mask_is_destination_oriented`
    separately — this is what the scenario runner stamps on every finished
    run.
    """
    n = instance.node_count
    succ: List[List[int]] = [[] for _ in range(n)]
    pred: List[List[int]] = [[] for _ in range(n)]
    indegree = [0] * n
    for e, (tail_id, head_id) in enumerate(instance._edge_node_ids):
        if (mask >> e) & 1:
            tail_id, head_id = head_id, tail_id
        succ[tail_id].append(head_id)
        pred[head_id].append(tail_id)
        indegree[head_id] += 1
    queue = [i for i in range(n) if indegree[i] == 0]
    removed = 0
    while queue:
        i = queue.pop()
        removed += 1
        for j in succ[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                queue.append(j)
    acyclic = removed == n
    dest = instance._dest_id
    reached = [False] * n
    reached[dest] = True
    frontier = [dest]
    count = 1
    while frontier:
        i = frontier.pop()
        for j in pred[i]:
            if not reached[j]:
                reached[j] = True
                count += 1
                frontier.append(j)
    return acyclic, count == n


def mask_directed_edges(
    instance: LinkReversalInstance, mask: int
) -> Tuple[DirectedEdge, ...]:
    """The ``(tail, head)`` edges of the ``mask`` orientation, in edge order.

    Equivalent to ``Orientation(instance, mask).directed_edges()`` without
    building the orientation (no counter array, no sink set) — what the
    simulation fast path uses to hand a final orientation over to the
    instance re-packing of a churn phase.
    """
    return tuple(
        (head, tail) if (mask >> e) & 1 else (tail, head)
        for e, (tail, head) in enumerate(instance.initial_edges)
    )


# ----------------------------------------------------------------------
# twin-node symmetry classes
# ----------------------------------------------------------------------
class _TwinClass:
    """One class of interchangeable nodes with its signature bit layout.

    ``fields[m]`` lists, for member ``m`` and every shared neighbour ``w`` (in
    a fixed order), the bit triple ``(edge_bit, own_row_bit, partner_row_bit)``
    — the edge-reversal bit of ``{member, w}``, the member's own bookkeeping
    bit for ``w`` and ``w``'s bookkeeping bit for the member (0 when the
    automaton keeps no per-neighbour rows).  ``count_shifts`` carries the
    members' counter fields for NewPR.  ``clear_mask`` clears every bit the
    class permutation can move.
    """

    __slots__ = ("members", "fields", "count_shifts", "clear_mask")

    def __init__(self, members, fields, count_shifts, clear_mask):
        self.members = members
        self.fields = fields
        self.count_shifts = count_shifts
        self.clear_mask = clear_mask


def twin_node_classes(instance: LinkReversalInstance) -> List[Tuple[int, ...]]:
    """Classes (size >= 2) of structurally equivalent non-destination nodes.

    Two nodes are twins when they share both the neighbour set and the
    initial in-neighbour set; swapping them is then an automorphism of the
    initial directed graph fixing everything else.  Twins are never adjacent
    (``u ∈ nbrs(v) = nbrs(u)`` would require a self loop), so all per-node
    effects commute.
    """
    groups: Dict[Tuple[FrozenSet, FrozenSet], List[int]] = {}
    for i, u in enumerate(instance.nodes):
        if i == instance._dest_id or not instance._degree[i]:
            continue
        key = (instance._nbrs[u], instance._in_nbrs[u])
        groups.setdefault(key, []).append(i)
    return [tuple(members) for members in groups.values() if len(members) >= 2]


# ----------------------------------------------------------------------
# compiled signature expanders
# ----------------------------------------------------------------------
class SignatureExpander(abc.ABC):
    """Compiled successor kernel of one automaton over int signatures.

    Having a kernel at all is what enables the model checker's sharded
    multi-process mode (workers must be able to decode any signature back
    into a state without the frontier carrying state objects) *and* the
    simulation fast path (the scenario engine drives ``step`` directly and
    never materialises a state).  Automata without a kernel
    (``compile_expander`` returns ``None``) run on the checker's generic
    single-process path and the simulator's legacy object path.
    """

    def __init__(self, automaton: IOAutomaton):
        self.automaton = automaton
        self.instance: LinkReversalInstance = automaton.instance
        instance = self.instance
        self._edge_mask = (1 << instance.edge_count) - 1
        self._inc = instance._incident_mask
        self._tail = instance._tail_sel
        self._sink_candidates = tuple(
            i
            for i in range(instance.node_count)
            if instance._degree[i] and i != instance._dest_id
        )
        self._twin_classes: Optional[List[_TwinClass]] = None

    # -- core interface -------------------------------------------------
    @abc.abstractmethod
    def initial_signature(self) -> int:
        """Signature of the automaton's initial state."""

    @abc.abstractmethod
    def step(self, sig: int, i: int) -> int:
        """Signature after node id ``i`` (a current sink) takes one step."""

    @abc.abstractmethod
    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        """Every ``(actor_id_token, successor_signature)`` pair of ``sig``."""

    @abc.abstractmethod
    def state_for(self, sig: int):
        """Re-materialise the full automaton state encoded by ``sig``."""

    def encode_state(self, state) -> int:
        """Signature of a state object in *this expander's* encoding.

        Defaults to ``state.signature()``; kernels whose int layout differs
        from the state's own signature (NewPR) override this.  Trace
        verification replays through the automaton and must re-encode the
        resulting states before comparing against the recorded chain.
        """
        return state.signature()

    @property
    @abc.abstractmethod
    def signature_bits(self) -> int:
        """Upper bound on the bit width of any reachable signature."""

    def action_for(self, token: Tuple[int, ...]) -> Action:
        """Rebuild the :class:`~repro.automata.ioa.Action` of a token."""
        return Reverse(self.instance.nodes[token[0]])

    def orientation_mask(self, sig: int) -> int:
        """The edge-reversal bitmask component of ``sig``."""
        return sig & self._edge_mask

    # -- shared sink enumeration ----------------------------------------
    def sink_ids(self, sig: int) -> List[int]:
        """Ids of the non-destination sinks of the orientation in ``sig``.

        An incident edge points at node ``i`` iff its reversal bit *equals*
        ``i``'s tail-selector bit (the selector marks the edges ``i``
        initially tails; reversing exactly those turns them incoming), so
        ``i`` is a sink iff ``mask`` and ``tail_sel[i]`` agree on every
        incident bit — one XOR + AND per node, no counters.
        """
        mask = sig & self._edge_mask
        inc = self._inc
        tail = self._tail
        return [i for i in self._sink_candidates if not ((mask ^ tail[i]) & inc[i])]

    # -- symmetry reduction ---------------------------------------------
    def _own_row_bit(self, i: int, w_id: int) -> int:
        """Bookkeeping bit "node ``w`` in node ``i``'s row", 0 when rowless."""
        return 0

    def _count_shift(self, i: int) -> Optional[int]:
        """Bit offset of node ``i``'s counter field, ``None`` when absent."""
        return None

    def _build_twin_classes(self) -> List[_TwinClass]:
        instance = self.instance
        classes = []
        for members in twin_node_classes(instance):
            shared = sorted(
                instance._node_id[v] for v in instance._nbrs[instance.nodes[members[0]]]
            )
            fields = []
            count_shifts: List[int] = []
            clear = 0
            for i in members:
                u = instance.nodes[i]
                row = []
                for j in shared:
                    w = instance.nodes[j]
                    edge_bit = 1 << instance._edge_id[(u, w)]
                    own_bit = self._own_row_bit(i, j)
                    partner_bit = self._own_row_bit(j, i)
                    row.append((edge_bit, own_bit, partner_bit))
                    clear |= edge_bit | own_bit | partner_bit
                shift = self._count_shift(i)
                if shift is not None:
                    count_shifts.append(shift)
                    clear |= _COUNT_MASK << shift
                fields.append(tuple(row))
            classes.append(
                _TwinClass(members, tuple(fields), tuple(count_shifts) or None, ~clear)
            )
        return classes

    @property
    def has_symmetry(self) -> bool:
        """Whether the instance has at least one twin class to reduce over."""
        if self._twin_classes is None:
            self._twin_classes = self._build_twin_classes()
        return bool(self._twin_classes)

    def canonicalize(self, sig: int) -> int:
        """Canonical orbit representative of ``sig`` under twin permutations.

        Within each twin class the members' local signatures (edge bit, own
        bookkeeping bit and partner bookkeeping bit per shared neighbour,
        plus the counter field when present) are sorted and re-assigned to
        the members in node order.  See the module docstring for soundness
        and its caveats.
        """
        if self._twin_classes is None:
            self._twin_classes = self._build_twin_classes()
        for cls in self._twin_classes:
            keys = []
            for m in range(len(cls.members)):
                key: List = [
                    (
                        1 if sig & edge_bit else 0,
                        1 if own_bit and sig & own_bit else 0,
                        1 if partner_bit and sig & partner_bit else 0,
                    )
                    for edge_bit, own_bit, partner_bit in cls.fields[m]
                ]
                if cls.count_shifts is not None:
                    key.append((sig >> cls.count_shifts[m]) & _COUNT_MASK)
                keys.append(tuple(key))
            ordered = sorted(keys)
            if ordered == keys:
                continue
            sig &= cls.clear_mask
            for m, key in enumerate(ordered):
                if cls.count_shifts is not None:
                    sig |= key[-1] << cls.count_shifts[m]
                    key = key[:-1]
                for (edge_bit, own_bit, partner_bit), (e_on, o_on, p_on) in zip(
                    cls.fields[m], key
                ):
                    if e_on:
                        sig |= edge_bit
                    if o_on:
                        sig |= own_bit
                    if p_on:
                        sig |= partner_bit
        return sig


class FullReversalExpander(SignatureExpander):
    """FR kernel: a sink's step XORs its whole incident-edge mask."""

    def initial_signature(self) -> int:
        return 0

    @property
    def signature_bits(self) -> int:
        return self.instance.edge_count

    def step(self, sig: int, i: int) -> int:
        return sig ^ self._inc[i]

    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        inc = self._inc
        return [((i,), sig ^ inc[i]) for i in self.sink_ids(sig)]

    def state_for(self, sig: int) -> FRState:
        return FRState(self.instance, Orientation(self.instance, sig & self._edge_mask))


class _ListKernelMixin:
    """Shared PR/OneStepPR machinery: ``list[u]`` rows packed above the mask.

    The signature layout is exactly :meth:`repro.core.pr.PRState.signature`:
    bit ``edge_count + csr_offset(u) + k`` is set iff ``u``'s ``k``-th
    incident neighbour is in ``list[u]``.
    """

    def _build_list_tables(self) -> None:
        instance = self.instance
        E = instance.edge_count
        offsets = instance._csr_offsets
        degrees = instance._degree
        n = instance.node_count
        self._row_shift = tuple(E + offsets[i] for i in range(n))
        self._row_mask = tuple((1 << degrees[i]) - 1 for i in range(n))
        self._row_clear = tuple(
            ~(self._row_mask[i] << self._row_shift[i]) for i in range(n)
        )
        # per node, per incident position: (position bit, edge bit, partner's
        # row bit for this node)
        entries: List[Tuple[Tuple[int, int, int], ...]] = []
        for i in range(n):
            u = instance.nodes[i]
            row = []
            for k, (e, v) in enumerate(
                zip(instance._incident_eids[i], instance._incident_nbrs[i])
            ):
                j = instance._node_id[v]
                pos_in_partner = instance._incident_nbrs[j].index(u)
                partner_bit = 1 << (E + offsets[j] + pos_in_partner)
                row.append((1 << k, 1 << e, partner_bit))
            entries.append(tuple(row))
        self._entries = tuple(entries)
        # lazily filled per-node memo: list row -> (edge-flip XOR, partner OR).
        # A node has at most 2^degree distinct rows, so the tables stay tiny
        # while turning the common step into three int ops + one dict hit.
        self._step_memo: Tuple[Dict[int, Tuple[int, int]], ...] = tuple(
            {} for _ in range(n)
        )

    def _own_row_bit(self, i: int, w_id: int) -> int:
        w = self.instance.nodes[w_id]
        position = self.instance._incident_nbrs[i].index(w)
        return 1 << (self._row_shift[i] + position)

    def step(self, sig: int, i: int) -> int:
        """One ``reverse(u)`` step of the PR effect, entirely on the int."""
        row = (sig >> self._row_shift[i]) & self._row_mask[i]
        pair = self._step_memo[i].get(row)
        if pair is None:
            pair = self._compile_step(i, row)
        return ((sig ^ pair[0]) | pair[1]) & self._row_clear[i]

    def _compile_step(self, i: int, row: int) -> Tuple[int, int]:
        """Flip/bookkeeping masks of one ``(node, row)`` pair, memoised."""
        effective = 0 if row == self._row_mask[i] else row
        flip = 0
        partners = 0
        for pos_bit, edge_bit, partner_bit in self._entries[i]:
            if not effective & pos_bit:
                # the edge to every neighbour outside list[u] is reversed and
                # u enters that neighbour's list
                flip ^= edge_bit
                partners |= partner_bit
        pair = (flip, partners)
        self._step_memo[i][row] = pair
        return pair

    def _step(self, i: int, sig: int) -> int:
        """Historical argument order of :meth:`step` (kept for callers)."""
        return self.step(sig, i)

    @property
    def signature_bits(self) -> int:
        # mask plus one bookkeeping bit per (node, incident edge) pair
        return 3 * self.instance.edge_count

    def _decode(self, sig: int, state_class):
        instance = self.instance
        mask = sig & self._edge_mask
        lists = instance.unpack_neighbour_sets(sig >> instance.edge_count)
        return state_class(instance, Orientation(instance, mask), lists)


class OneStepPRExpander(_ListKernelMixin, SignatureExpander):
    """OneStepPR kernel: single-node ``reverse(u)`` actions."""

    def __init__(self, automaton: OneStepPartialReversal):
        super().__init__(automaton)
        self._build_list_tables()
        self._initial_sig = automaton.initial_state().signature()

    def initial_signature(self) -> int:
        return self._initial_sig

    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        return [((i,), self.step(sig, i)) for i in self.sink_ids(sig)]

    def state_for(self, sig: int) -> OneStepPRState:
        return self._decode(sig, OneStepPRState)


class PartialReversalExpander(_ListKernelMixin, SignatureExpander):
    """PR kernel: every non-empty subset of the sink set may step at once.

    Sinks are pairwise non-adjacent (an edge between two nodes points at only
    one of them), so the per-node effects touch disjoint edges and the subset
    action is the composition of the members' single steps in any order —
    exactly Algorithm 1's simultaneous effect.
    """

    def __init__(self, automaton: PartialReversal, single_actions_only: bool = False):
        super().__init__(automaton)
        self._build_list_tables()
        self.single_actions_only = single_actions_only
        self._initial_sig = automaton.initial_state().signature()

    def initial_signature(self) -> int:
        return self._initial_sig

    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        sinks = self.sink_ids(sig)
        if self.single_actions_only:
            return [((i,), self.step(sig, i)) for i in sinks]
        result = []
        for size in range(1, len(sinks) + 1):
            for subset in combinations(sinks, size):
                successor = sig
                for i in subset:
                    successor = self.step(successor, i)
                result.append((subset, successor))
        return result

    def action_for(self, token: Tuple[int, ...]) -> Action:
        return ReverseSet(frozenset(self.instance.nodes[i] for i in token))

    def state_for(self, sig: int) -> PRState:
        return self._decode(sig, PRState)


class NewPRExpander(SignatureExpander):
    """NewPR kernel: parity-selected constant flip masks plus packed counters.

    The int signature is ``(count[n-1] .. count[0]) << edge_count | mask``
    with :data:`_COUNT_BITS` bits per counter — a bijective re-encoding of
    ``NewPRState.signature()`` (which is a (mask, counts-tuple) pair) chosen
    so the sharded frontier and the spillable visited set stay int-only.
    """

    def __init__(self, automaton: NewPartialReversal):
        super().__init__(automaton)
        instance = self.instance
        E = instance.edge_count
        n = instance.node_count
        self._shift = tuple(E + _COUNT_BITS * i for i in range(n))
        # parity EVEN reverses the edges to the *initial in-neighbours* (the
        # incident edges whose initial head is this node); ODD the initial
        # out-edges.  A stepping node is a sink, so every such edge currently
        # points at it and the whole mask flips.
        self._even_flip = tuple(
            instance._incident_mask[i] & ~instance._tail_sel[i] for i in range(n)
        )
        self._odd_flip = tuple(instance._tail_sel[i] for i in range(n))

    def initial_signature(self) -> int:
        return 0

    @property
    def signature_bits(self) -> int:
        return self.instance.edge_count + _COUNT_BITS * self.instance.node_count

    def _count_shift(self, i: int) -> Optional[int]:
        return self._shift[i]

    def step(self, sig: int, i: int) -> int:
        count = (sig >> self._shift[i]) & _COUNT_MASK
        if count == _COUNT_MASK:
            raise OverflowError(
                f"NewPR step counter of node id {i} exceeded {_COUNT_MASK}"
            )
        flip = self._even_flip[i] if count % 2 == 0 else self._odd_flip[i]
        return (sig ^ flip) + (1 << self._shift[i])

    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        return [((i,), self.step(sig, i)) for i in self.sink_ids(sig)]

    def state_for(self, sig: int) -> NewPRState:
        instance = self.instance
        counts = {
            u: (sig >> self._shift[i]) & _COUNT_MASK
            for i, u in enumerate(instance.nodes)
        }
        return NewPRState(
            instance, Orientation(instance, sig & self._edge_mask), counts
        )

    def encode_state(self, state: NewPRState) -> int:
        sig = state.graph_signature()
        for i, u in enumerate(self.instance.nodes):
            sig |= state.counts[u] << self._shift[i]
        return sig


def compile_expander(
    automaton: IOAutomaton, single_actions_only: bool = False
) -> Optional[SignatureExpander]:
    """Compile a signature kernel for ``automaton``, or ``None`` if unsupported.

    Unsupported automata (BLL, the height formulations, custom test automata)
    fall back to the model checker's generic state-materialising path and the
    simulator's legacy object path, which keep the legacy semantics but
    cannot shard, spill or skip state materialisation.
    """
    if isinstance(automaton, PartialReversal):
        return PartialReversalExpander(automaton, single_actions_only)
    if isinstance(automaton, OneStepPartialReversal):
        return OneStepPRExpander(automaton)
    if isinstance(automaton, NewPartialReversal):
        return NewPRExpander(automaton)
    if isinstance(automaton, FullReversal):
        return FullReversalExpander(automaton)
    return None
