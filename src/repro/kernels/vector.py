"""Batch (vectorised) twins of the compiled signature expanders.

The scalar kernels in :mod:`repro.kernels.signature` expand one signature
per Python call; at 10⁸ states the interpreter loop itself is the bottleneck.
This module re-expresses each kernel as **whole-frontier numpy column ops**
over a ``uint64`` array of packed signatures:

* the sink test ``((sig ^ tail_sel[i]) & inc[i]) == 0`` becomes one
  broadcast XOR/AND per frontier giving the full ``(states × candidates)``
  sink matrix;
* FR's step is a single XOR column; the PR/OneStepPR list kernels gather
  their flip/bookkeeping masks from per-node ``2^degree`` tables (built once
  through the scalar kernel's own ``_compile_step``, so the masks are equal
  by construction); NewPR's parity-selected flips and counter increments are
  ``where``/add columns;
* PR's subset actions group the frontier by sink-set word so each distinct
  subset is composed once per group instead of once per state.

**Exactness contract.**  :meth:`VectorExpander.expand` returns successors in
*exactly* the scalar generation order: for each frontier state (in frontier
order) every ``(token, successor)`` pair appears in the order
``SignatureExpander.successors`` would emit it.  The model checker's
differential pins (counts, visited sets, predecessor choices, truncation
points, failure order) all lean on this.

**Fallback.**  :func:`compile_vector_expander` returns ``None`` whenever the
signature does not fit one 64-bit lane (``signature_bits > 64``), node ids do
not fit the action-token bitmask (``node_count > 64``) or a list kernel's
degree would need oversized step tables; the checker then stays on the exact
scalar path.  NewPR's ``E + 16·n`` layout only fits toy instances — that is
expected, the fallback is the documented behaviour, not an error.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

try:  # numpy is required for the batch path only; everything degrades to scalar
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None  # type: ignore[assignment]

from repro.core.graph import LinkReversalInstance
from repro.kernels.signature import (
    _COUNT_BITS,
    _COUNT_MASK,
    FullReversalExpander,
    NewPRExpander,
    OneStepPRExpander,
    PartialReversalExpander,
    SignatureExpander,
)

__all__ = [
    "BatchExpansion",
    "VectorExpander",
    "compile_vector_expander",
    "decode_token",
    "mask_is_acyclic_batch",
    "mask_is_destination_oriented_batch",
    "shard_of_batch",
]

#: A list-kernel node needs a ``2^degree`` flip/bookkeeping table per node;
#: beyond this degree the tables stop being "tiny" and the scalar memo wins.
_MAX_TABLE_DEGREE = 12

#: ``hash(int)`` on CPython is reduction modulo the Mersenne prime ``2^61-1``
#: (for the non-negative ints signatures are), which vectorises to one
#: modulo — :func:`shard_of_batch` must agree with ``signature.shard_of``
#: because single-process resume ids and sharded runs share visited sets.
_HASH_MODULUS = (1 << 61) - 1


def decode_token(token: int) -> Tuple[int, ...]:
    """Unpack an actor-bitmask token into the scalar tuple form (ids ascending)."""
    ids = []
    i = 0
    while token:
        if token & 1:
            ids.append(i)
        token >>= 1
        i += 1
    return tuple(ids)


def shard_of_batch(sigs: "np.ndarray", shards: int) -> "np.ndarray":
    """Vectorised ``shard_of``: owner shard per signature, as ``int64``.

    Agrees with ``hash(sig) % shards`` for every unsigned 64-bit signature
    (pinned by tests, including the ``2^61-1`` wrap-around values).
    """
    reduced = sigs % np.uint64(_HASH_MODULUS)
    return (reduced % np.uint64(shards)).astype(np.int64)


# ----------------------------------------------------------------------
# batch structural checks (vectorised mask_is_acyclic / destination checks)
# ----------------------------------------------------------------------
def _oriented_slots(
    instance: LinkReversalInstance, masks: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Flattened per-lane ``(tail, head)`` node slots of every directed edge.

    Lane ``b``'s node ``i`` lives at slot ``b * n + i``, so one ``bincount``
    over the returned arrays accumulates per-node quantities for the whole
    batch at once.
    """
    edges = np.asarray(instance._edge_node_ids, dtype=np.int64).reshape(-1, 2)
    tails0 = edges[:, 0][None, :]
    heads0 = edges[:, 1][None, :]
    eshift = np.arange(edges.shape[0], dtype=np.uint64)[None, :]
    rev = ((masks[:, None] >> eshift) & np.uint64(1)).astype(bool)
    tails = np.where(rev, heads0, tails0)
    heads = np.where(rev, tails0, heads0)
    offsets = (np.arange(masks.shape[0], dtype=np.int64) * instance.node_count)[:, None]
    return (tails + offsets).ravel(), (heads + offsets).ravel()


def mask_is_acyclic_batch(
    instance: LinkReversalInstance, masks: "np.ndarray"
) -> "np.ndarray":
    """Batch twin of ``mask_is_acyclic``: one bool per mask, Kahn peel in bulk.

    Every peel round removes all current zero-indegree nodes of *every* lane
    and decrements their successors with a single ``bincount`` — at most
    ``n`` rounds regardless of batch width.
    """
    B = int(masks.shape[0])
    n = instance.node_count
    if B == 0:
        return np.zeros(0, dtype=bool)
    if instance.edge_count == 0:
        return np.ones(B, dtype=bool)
    tail_slot, head_slot = _oriented_slots(instance, masks)
    indegree = np.bincount(head_slot, minlength=B * n)
    removed = np.zeros(B * n, dtype=bool)
    for _ in range(n):
        newly = (indegree == 0) & ~removed
        if not newly.any():
            break
        removed |= newly
        out_edges = newly[tail_slot]
        if out_edges.any():
            indegree = indegree - np.bincount(head_slot[out_edges], minlength=B * n)
    return removed.reshape(B, n).all(axis=1)


def mask_is_destination_oriented_batch(
    instance: LinkReversalInstance, masks: "np.ndarray"
) -> "np.ndarray":
    """Batch twin of ``mask_is_destination_oriented``: reverse-reachability fixpoint."""
    B = int(masks.shape[0])
    n = instance.node_count
    if B == 0:
        return np.zeros(0, dtype=bool)
    reached = np.zeros(B * n, dtype=bool)
    reached[np.arange(B, dtype=np.int64) * n + instance._dest_id] = True
    if instance.edge_count:
        tail_slot, head_slot = _oriented_slots(instance, masks)
        for _ in range(n):
            grow = reached[head_slot] & ~reached[tail_slot]
            if not grow.any():
                break
            reached[tail_slot[grow]] = True
    return reached.reshape(B, n).all(axis=1)


# ----------------------------------------------------------------------
# batch expansion
# ----------------------------------------------------------------------
class BatchExpansion:
    """One whole-frontier expansion, in exact scalar generation order.

    ``successors[k]`` is the ``k``-th successor signature the scalar BFS
    would have generated from this frontier, ``parents[k]`` the frontier
    index it came from and ``tokens[k]`` its actor set as a node-id bitmask
    (:func:`decode_token` recovers the scalar tuple).  ``quiescent`` holds
    the frontier indices with no enabled action, ascending.
    """

    __slots__ = ("successors", "parents", "tokens", "quiescent")

    def __init__(self, successors, parents, tokens, quiescent):
        self.successors = successors
        self.parents = parents
        self.tokens = tokens
        self.quiescent = quiescent

    def __len__(self) -> int:
        return int(self.successors.shape[0])


class VectorExpander:
    """Batch twin of one scalar :class:`SignatureExpander`.

    Holds the scalar kernel for everything that stays per-state (state
    re-materialisation, trace replay) and numpy columns for everything that
    runs per-frontier.
    """

    def __init__(self, scalar: SignatureExpander):
        self.scalar = scalar
        self.instance: LinkReversalInstance = scalar.instance
        cand = scalar._sink_candidates
        self._cand = cand
        self._inc_col = np.array(
            [scalar._inc[i] for i in cand], dtype=np.uint64
        )[None, :]
        self._tail_col = np.array(
            [scalar._tail[i] for i in cand], dtype=np.uint64
        )[None, :]
        self._token = tuple(np.uint64(1 << i) for i in cand)

    # -- per-candidate step columns (algorithm-specific) -----------------
    def _step_many(self, sigs: "np.ndarray", i: int) -> "np.ndarray":
        raise NotImplementedError

    def _sink_matrix(self, sigs: "np.ndarray") -> "np.ndarray":
        """``(frontier × candidates)`` bool matrix of the scalar sink test."""
        return ((sigs[:, None] ^ self._tail_col) & self._inc_col) == 0

    def _emit(self, sigs, smat, succ_parts, parent_parts, token_parts) -> None:
        """Append candidate-major successor columns (single-actor kernels)."""
        for ci, i in enumerate(self._cand):
            lanes = np.flatnonzero(smat[:, ci])
            if lanes.size == 0:
                continue
            succ_parts.append(self._step_many(sigs[lanes], i))
            parent_parts.append(lanes)
            token_parts.append(np.full(lanes.size, self._token[ci]))

    def expand(self, sigs: "np.ndarray") -> BatchExpansion:
        """Expand a whole frontier; see :class:`BatchExpansion` for the contract."""
        smat = self._sink_matrix(sigs)
        quiescent = np.flatnonzero(~smat.any(axis=1))
        succ_parts: List = []
        parent_parts: List = []
        token_parts: List = []
        self._emit(sigs, smat, succ_parts, parent_parts, token_parts)
        if not succ_parts:
            empty = np.empty(0, dtype=np.uint64)
            return BatchExpansion(
                empty, np.empty(0, dtype=np.int64), empty.copy(), quiescent
            )
        successors = np.concatenate(succ_parts)
        parents = np.concatenate(parent_parts)
        tokens = np.concatenate(token_parts)
        # candidate-major → frontier-major: a stable sort by parent recovers
        # the scalar per-state emission order (candidates were appended
        # ascending, matching sink_ids / combinations order)
        order = np.argsort(parents, kind="stable")
        return BatchExpansion(
            successors[order], parents[order], tokens[order], quiescent
        )


class _VectorFullReversal(VectorExpander):
    """FR: a sink's step XORs its incident-edge column."""

    def __init__(self, scalar: FullReversalExpander):
        super().__init__(scalar)
        self._inc_by_id = {i: np.uint64(scalar._inc[i]) for i in self._cand}

    def _step_many(self, sigs, i):
        return sigs ^ self._inc_by_id[i]


class _VectorListKernel(VectorExpander):
    """PR/OneStepPR: flip/bookkeeping masks gathered from per-node row tables.

    Each candidate's table is filled by the *scalar* kernel's
    ``_compile_step`` over all ``2^degree`` rows, so vector and scalar steps
    are equal by construction, not by re-derivation.
    """

    def __init__(self, scalar):
        super().__init__(scalar)
        self._row_shift = {}
        self._row_mask = {}
        self._row_clear = {}
        self._flip_tab = {}
        self._or_tab = {}
        for i in self._cand:
            degree = scalar.instance._degree[i]
            rows = 1 << degree
            flips = np.empty(rows, dtype=np.uint64)
            partners = np.empty(rows, dtype=np.uint64)
            for row in range(rows):
                flip, partner = scalar._compile_step(i, row)
                flips[row] = flip
                partners[row] = partner
            self._row_shift[i] = np.uint64(scalar._row_shift[i])
            self._row_mask[i] = np.uint64(scalar._row_mask[i])
            # scalar _row_clear is a negative Python int; re-derive the
            # unsigned 64-bit complement instead of casting it
            keep = (~(scalar._row_mask[i] << scalar._row_shift[i])) & ((1 << 64) - 1)
            self._row_clear[i] = np.uint64(keep)
            self._flip_tab[i] = flips
            self._or_tab[i] = partners

    def _step_many(self, sigs, i):
        rows = (sigs >> self._row_shift[i]) & self._row_mask[i]
        return (
            (sigs ^ self._flip_tab[i][rows]) | self._or_tab[i][rows]
        ) & self._row_clear[i]


class _VectorOneStepPR(_VectorListKernel):
    """OneStepPR: single-node actions only — the base single-actor emit."""


class _VectorPartialReversal(_VectorListKernel):
    """PR: every non-empty sink subset acts; frontiers grouped by sink word.

    States sharing a sink set share every subset's step composition, so each
    distinct subset costs ``|subset|`` vector steps per *group* rather than
    per state.
    """

    def __init__(self, scalar: PartialReversalExpander):
        super().__init__(scalar)
        self.single_actions_only = scalar.single_actions_only
        self._bit = tuple(np.uint64(1 << ci) for ci in range(len(self._cand)))

    def _emit(self, sigs, smat, succ_parts, parent_parts, token_parts):
        if self.single_actions_only:
            super()._emit(sigs, smat, succ_parts, parent_parts, token_parts)
            return
        word = np.zeros(sigs.shape[0], dtype=np.uint64)
        for ci in range(len(self._cand)):
            word |= np.where(smat[:, ci], self._bit[ci], np.uint64(0))
        uniq, inverse = np.unique(word, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        bounds = np.searchsorted(inverse[order], np.arange(uniq.size + 1))
        for g in range(uniq.size):
            w = int(uniq[g])
            if w == 0:
                continue
            lanes = order[bounds[g]:bounds[g + 1]]
            sinks = [self._cand[ci] for ci in range(len(self._cand)) if (w >> ci) & 1]
            base = sigs[lanes]
            for size in range(1, len(sinks) + 1):
                for subset in combinations(sinks, size):
                    current = base
                    for i in subset:
                        current = self._step_many(current, i)
                    succ_parts.append(current)
                    parent_parts.append(lanes)
                    token_parts.append(
                        np.full(
                            lanes.size, np.uint64(sum(1 << i for i in subset))
                        )
                    )


class _VectorNewPR(VectorExpander):
    """NewPR: parity-selected flip columns plus packed counter arithmetic."""

    def __init__(self, scalar: NewPRExpander):
        super().__init__(scalar)
        self._shift = {i: np.uint64(scalar._shift[i]) for i in self._cand}
        self._even = {i: np.uint64(scalar._even_flip[i]) for i in self._cand}
        self._odd = {i: np.uint64(scalar._odd_flip[i]) for i in self._cand}
        self._bump = {i: np.uint64(1 << scalar._shift[i]) for i in self._cand}

    def _step_many(self, sigs, i):
        counts = (sigs >> self._shift[i]) & np.uint64(_COUNT_MASK)
        if (counts == np.uint64(_COUNT_MASK)).any():
            raise OverflowError(
                f"NewPR step counter of node id {i} exceeded {_COUNT_MASK}"
            )
        flip = np.where((counts & np.uint64(1)) == 0, self._even[i], self._odd[i])
        return (sigs ^ flip) + self._bump[i]


def compile_vector_expander(
    scalar: Optional[SignatureExpander],
) -> Optional[VectorExpander]:
    """Batch twin of a compiled scalar kernel, or ``None`` when out of range.

    The gate is the documented word-width fallback: signatures must pack into
    one ``uint64`` lane, node ids into the 64-bit action-token mask, and list
    kernels must keep their per-node step tables small
    (``degree <= {deg}``).  NewPR's ``E + {cb}·n`` bit layout therefore only
    vectorises on toy instances, by design.
    """
    if np is None or scalar is None:
        return None
    if scalar.signature_bits > 64 or scalar.instance.node_count > 64:
        return None
    if isinstance(scalar, (PartialReversalExpander, OneStepPRExpander)):
        degrees = [scalar.instance._degree[i] for i in scalar._sink_candidates]
        if degrees and max(degrees) > _MAX_TABLE_DEGREE:
            return None
        if isinstance(scalar, PartialReversalExpander):
            return _VectorPartialReversal(scalar)
        return _VectorOneStepPR(scalar)
    if isinstance(scalar, NewPRExpander):
        return _VectorNewPR(scalar)
    if isinstance(scalar, FullReversalExpander):
        return _VectorFullReversal(scalar)
    return None


if compile_vector_expander.__doc__:  # keep the gate's docstring numbers honest
    compile_vector_expander.__doc__ = compile_vector_expander.__doc__.format(
        deg=_MAX_TABLE_DEGREE, cb=_COUNT_BITS
    )
