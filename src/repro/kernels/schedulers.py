"""Mask-level scheduler choice logic for the signature simulator.

Every scheduler in :data:`repro.schedulers.SCHEDULER_FACTORIES` has a twin
here that picks the next actors directly from the simulator's incremental
**sink-id set** — no state objects, no action objects, and (for the
adversarial/greedy heuristics) no neighbour-set unpacking: hop distances and
instance order are precomputed id arrays, so a pick is a ``max``/``min`` over
a small set of ints.

Exactness contract
------------------

A mask scheduler must reproduce its object-level counterpart *bit for bit*:
same actor choice at every step and — for the seeded schedulers — the same
RNG consumption.  That holds because the object schedulers enumerate enabled
nodes as ``state.sinks()`` (sink ids ascending, i.e. instance node order)
and the simulator hands the mask schedulers the same ids in the same order,
and because ``random.Random.choice`` / ``sample`` / ``randint`` consume
randomness as a function of the sequence *length* only, never of the element
values.  The differential test suite pins this equivalence for every
scheduler on every kernel algorithm.

``select`` returns a tuple of actor node-ids (one action of the run — a
multi-id tuple is PR's concurrent ``reverse(S)``) or ``None`` for
quiescence.  Scheduler objects are single-phase: the scenario runner builds
a fresh one per convergence/repair phase, exactly as the object path builds
a fresh :class:`~repro.schedulers.base.Scheduler` per phase.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, Optional, Set, Tuple

Token = Tuple[int, ...]


class MaskScheduler:
    """Base class: picks actor-id tuples from the simulator's sink set."""

    def bind(self, simulator) -> None:
        """Attach to one simulator (per-instance tables); default: no-op."""

    def select(self, simulator, sig: int, sinks: Set[int]) -> Optional[Token]:
        """The next action's actor ids, or ``None`` to declare quiescence."""
        raise NotImplementedError


class MaskSequentialScheduler(MaskScheduler):
    """First enabled node in instance order (twin of ``SequentialScheduler``)."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed

    def select(self, simulator, sig: int, sinks: Set[int]) -> Optional[Token]:
        if not sinks:
            return None
        return (min(sinks),)


class MaskRandomScheduler(MaskScheduler):
    """Seeded uniform choice over the sink ids (twin of ``RandomScheduler``).

    ``subset_probability`` mirrors the object scheduler: with that
    probability (PR only) a uniformly random non-empty subset of the sinks
    fires as one concurrent action.  ``choice``/``randint``/``sample`` are
    replayed on the id list, consuming the RNG identically to the object
    path on the node list.
    """

    def __init__(self, seed: Optional[int] = None, subset_probability: float = 0.0):
        if not 0.0 <= subset_probability <= 1.0:
            raise ValueError("subset_probability must be in [0, 1]")
        self.seed = seed
        self.subset_probability = subset_probability
        self._rng = random.Random(seed)

    def select(self, simulator, sig: int, sinks: Set[int]) -> Optional[Token]:
        if not sinks:
            return None
        ids = sorted(sinks)
        rng = self._rng
        if (
            self.subset_probability > 0.0
            and simulator.supports_subsets
            and rng.random() < self.subset_probability
        ):
            size = rng.randint(1, len(ids))
            return tuple(rng.sample(ids, size))
        return (ids[rng.randrange(len(ids))],)


class MaskGreedyScheduler(MaskScheduler):
    """All sinks step every round (twin of ``GreedyScheduler``).

    For PR the round is one concurrent multi-id action; for the single-node
    kernels the round is serialised from a snapshot queue of the round-start
    sinks (serialisation never disables a queued sink — sinks are pairwise
    non-adjacent — but membership is re-checked like the object scheduler
    re-checks enabledness).
    """

    def __init__(self, seed: Optional[int] = None, concurrent_for_pr: bool = True):
        self.seed = seed
        self.concurrent_for_pr = concurrent_for_pr
        self._round_queue: Deque[int] = deque()

    def select(self, simulator, sig: int, sinks: Set[int]) -> Optional[Token]:
        if self.concurrent_for_pr and simulator.supports_subsets:
            if not sinks:
                return None
            return tuple(sorted(sinks))
        while True:
            while self._round_queue:
                i = self._round_queue.popleft()
                if i in sinks:
                    return (i,)
            if not sinks:
                return None
            self._round_queue = deque(sorted(sinks))


class _DistanceScheduler(MaskScheduler):
    """Shared BFS-distance machinery of the adversarial/lazy heuristics."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._distance: Tuple[int, ...] = ()

    def bind(self, simulator) -> None:
        instance = simulator.instance
        n = instance.node_count
        infinity = n + 1
        distance = [infinity] * n
        distance[instance._dest_id] = 0
        frontier = [instance._dest_id]
        nbr_ids = simulator.neighbour_ids
        while frontier:
            next_frontier = []
            for i in frontier:
                for j in nbr_ids[i]:
                    if distance[j] == infinity:
                        distance[j] = distance[i] + 1
                        next_frontier.append(j)
            frontier = next_frontier
        self._distance = tuple(distance)


class MaskAdversarialScheduler(_DistanceScheduler):
    """Farthest sink from the destination (twin of ``AdversarialScheduler``).

    Ties break towards the smallest id, matching the object scheduler's
    ``max`` by ``(distance, -instance order)``.
    """

    def select(self, simulator, sig: int, sinks: Set[int]) -> Optional[Token]:
        if not sinks:
            return None
        distance = self._distance
        return (max(sinks, key=lambda i: (distance[i], -i)),)


class MaskLazyScheduler(_DistanceScheduler):
    """Closest sink to the destination (twin of ``LazyScheduler``)."""

    def select(self, simulator, sig: int, sinks: Set[int]) -> Optional[Token]:
        if not sinks:
            return None
        distance = self._distance
        return (min(sinks, key=lambda i: (distance[i], i)),)


class MaskRoundRobinScheduler(MaskScheduler):
    """Fair rotation over the non-destination ids (twin of ``RoundRobinScheduler``)."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._cursor = 0
        self._order: Tuple[int, ...] = ()

    def bind(self, simulator) -> None:
        instance = simulator.instance
        self._order = tuple(
            i for i in range(instance.node_count) if i != instance._dest_id
        )
        self._cursor = 0

    def select(self, simulator, sig: int, sinks: Set[int]) -> Optional[Token]:
        order = self._order
        n = len(order)
        for offset in range(n):
            i = order[(self._cursor + offset) % n]
            if i in sinks:
                self._cursor = (self._cursor + offset + 1) % n
                return (i,)
        return None


#: Name → factory registry; the names (and per-name seed semantics) mirror
#: :data:`repro.schedulers.SCHEDULER_FACTORIES` one-for-one, so a scenario
#: spec's scheduler axis resolves on either engine.
MASK_SCHEDULER_FACTORIES: Dict[str, Callable[[Optional[int]], MaskScheduler]] = {
    "greedy": lambda seed: MaskGreedyScheduler(seed=seed),
    "sequential": lambda seed: MaskSequentialScheduler(seed=seed),
    "random": lambda seed: MaskRandomScheduler(seed=seed),
    "adversarial": lambda seed: MaskAdversarialScheduler(seed=seed),
    "lazy": lambda seed: MaskLazyScheduler(seed=seed),
    "round-robin": lambda seed: MaskRoundRobinScheduler(seed=seed),
}


def make_mask_scheduler(name: str, seed: Optional[int] = None) -> MaskScheduler:
    """Build the named mask-level scheduler with the given seed."""
    try:
        factory = MASK_SCHEDULER_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"no mask-level scheduler {name!r}; known: "
            f"{', '.join(sorted(MASK_SCHEDULER_FACTORIES))}"
        ) from None
    return factory(seed)
