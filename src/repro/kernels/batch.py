"""Lockstep structure-of-arrays execution of many convergence phases.

:class:`BatchSimulator` is the batched twin of
:meth:`repro.kernels.simulator.SignatureSimulator.run_phase`: it holds B
*lanes* — independent (simulator, scheduler, signature) runs of identical
shape — as parallel arrays and steps every live lane once per iteration:

* **per-lane arrays**: current signature, incremental sink-id set, per-lane
  step count and work/round tallies, plus the per-lane kernel tables
  (``step`` function, edge mask, incidence rows) prefetched into flat lists
  so the hot loop never touches an attribute chain;
* **convergence mask**: the live-lane list is rebuilt each iteration, so a
  lane that converges (or hits the step bound / deadline) retires without
  breaking the lockstep of the remaining lanes;
* **shared kernels**: lanes may (and, for seed-deterministic topology
  families, do) reference the *same* :class:`SignatureSimulator` object —
  simulators carry no run state, so one compiled kernel serves any number of
  lanes, which is where the batch amortisation comes from.

Exactness contract
------------------

Each lane's step sequence is **bit-for-bit identical** to running its
scheduler through ``run_phase`` on its own: the per-lane order of scheduler
select, kernel step, XOR work accounting, incremental sink update, round
observation and deadline check is copied verbatim from the ``run_phase``
hot loop, and lanes share no mutable state (each lane owns its scheduler,
hence its RNG stream).  Lockstep only interleaves *independent* per-lane
sequences, so results cannot depend on lane order — the batch differential
suite pins this against the per-scenario kernel engine field by field.

Deadline semantics: every live lane advances exactly one action per
iteration, so checking the shared wall-clock deadline once per iteration
(every :data:`~repro.kernels.simulator.DEADLINE_CHECK_STRIDE` iterations,
always including the first) observes each lane at the same action indices
as ``run_phase``'s per-run countdown.  When the deadline passes, every lane
still live times out together — retired lanes keep their outcome.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.kernels.schedulers import MaskScheduler
from repro.kernels.simulator import (
    DEADLINE_CHECK_STRIDE,
    RoundTally,
    SignatureSimulator,
    WorkTally,
)


@dataclass
class BatchLaneOutcome:
    """Result of one lane of a :meth:`BatchSimulator.run` call.

    ``steps`` counts the lane's actions this phase; ``converged`` is ``True``
    iff the lane's scheduler declared quiescence (or the step bound was hit
    with no sinks left).  A ``timed_out`` lane carries the step index the
    deadline check fired at (``timeout_step``), matching the index in
    ``run_phase``'s ``DeadlineExceeded`` message.
    """

    signature: int
    steps: int
    converged: bool
    timed_out: bool = False
    timeout_step: int = 0


class BatchSimulator:
    """Runs B independent convergence phases in lockstep, one action each per
    iteration, retiring converged lanes via the live-lane mask."""

    def __init__(self) -> None:
        # structure-of-arrays lane state, indexed by lane id
        self._sims: List[SignatureSimulator] = []
        self._schedulers: List[MaskScheduler] = []
        self._sigs: List[int] = []
        self._sinks: List[set] = []
        self._works: List[Optional[WorkTally]] = []
        self._rounds: List[Optional[RoundTally]] = []

    @property
    def width(self) -> int:
        """Number of lanes added so far."""
        return len(self._sims)

    def add_lane(
        self,
        simulator: SignatureSimulator,
        scheduler: MaskScheduler,
        *,
        initial_signature: Optional[int] = None,
        work: Optional[WorkTally] = None,
        rounds: Optional[RoundTally] = None,
    ) -> int:
        """Append one lane; returns its index.

        ``simulator`` may be shared with other lanes (it carries no run
        state); ``scheduler`` must be exclusive to this lane (it carries the
        RNG / rotation state).  The scheduler is bound here, exactly once per
        phase, as ``run_phase`` binds at phase start.  ``work`` / ``rounds``
        tallies are updated in place — pass one pair per *scenario* across
        its phases to accumulate, as the per-scenario engines do.
        """
        scheduler.bind(simulator)
        sig = (
            simulator.initial_signature()
            if initial_signature is None
            else initial_signature
        )
        self._sims.append(simulator)
        self._schedulers.append(scheduler)
        self._sigs.append(sig)
        self._sinks.append(simulator.sink_id_set(sig))
        self._works.append(work)
        self._rounds.append(rounds)
        return len(self._sims) - 1

    def run(
        self,
        *,
        max_steps: Optional[int] = None,
        deadline: Optional[float] = None,
        deadline_stride: int = DEADLINE_CHECK_STRIDE,
    ) -> List[BatchLaneOutcome]:
        """Run every lane to quiescence, the step bound or the deadline.

        One call per :class:`BatchSimulator` instance — per-lane signature
        and sink state is consumed by the run.  Returns one
        :class:`BatchLaneOutcome` per lane, in ``add_lane`` order.
        """
        if max_steps is None:
            from repro.automata.executions import DEFAULT_MAX_STEPS

            max_steps = DEFAULT_MAX_STEPS
        width = len(self._sims)
        sims = self._sims
        sigs = self._sigs
        sinks_by_lane = self._sinks
        works = self._works
        rounds_by_lane = self._rounds
        # prefetch per-lane kernel tables; the lane loop below is the
        # run_phase hot loop verbatim, with the per-phase locals swapped for
        # these per-lane array reads
        kernels = [sim.kernel for sim in sims]
        step_fns = [kernel.step for kernel in kernels]
        select_fns = [scheduler.select for scheduler in self._schedulers]
        edge_masks = [kernel._edge_mask for kernel in kernels]
        incs = [kernel._inc for kernel in kernels]
        tails = [kernel._tail for kernel in kernels]
        incidents = [sim._incident for sim in sims]
        can_sinks = [sim._can_sink for sim in sims]
        nodes_by_lane = [sim.instance.nodes for sim in sims]

        outcomes: List[Optional[BatchLaneOutcome]] = [None] * width
        live = list(range(width))
        iteration = 0
        deadline_countdown = 0
        while live:
            if iteration >= max_steps:
                # step bound reached without the scheduler declaring
                # quiescence (the run_phase for-else branch, per lane)
                for lane in live:
                    outcomes[lane] = BatchLaneOutcome(
                        signature=sigs[lane],
                        steps=iteration,
                        converged=not sinks_by_lane[lane],
                    )
                break
            next_live = []
            for lane in live:
                sim = sims[lane]
                sig = sigs[lane]
                sinks = sinks_by_lane[lane]
                actors = select_fns[lane](sim, sig, sinks)
                if actors is None:
                    outcomes[lane] = BatchLaneOutcome(
                        signature=sig, steps=iteration, converged=True
                    )
                    continue
                step = step_fns[lane]
                new_sig = sig
                for i in actors:
                    new_sig = step(new_sig, i)
                edge_mask = edge_masks[lane]
                xor = (sig ^ new_sig) & edge_mask
                mask = new_sig & edge_mask
                work = works[lane]
                if work is not None:
                    work.node_steps += len(actors)
                    work.edge_reversals += xor.bit_count()
                inc = incs[lane]
                tail = tails[lane]
                incident = incidents[lane]
                can_sink = can_sinks[lane]
                for i in actors:
                    if xor & inc[i]:
                        sinks.discard(i)
                        for edge_bit, j in incident[i]:
                            # a flipped edge now points at j: j may have
                            # become a sink (it cannot have stopped being one)
                            if (
                                xor & edge_bit
                                and can_sink[j]
                                and not ((mask ^ tail[j]) & inc[j])
                            ):
                                sinks.add(j)
                    elif work is not None:
                        work.dummy_steps += 1
                rounds = rounds_by_lane[lane]
                if rounds is not None:
                    rounds.observe(actors, nodes_by_lane[lane])
                sigs[lane] = new_sig
                next_live.append(lane)
            live = next_live
            if deadline is not None and live:
                # every live lane took exactly one action this iteration, so
                # one check per iteration observes each lane at the same
                # action indices as run_phase's per-run countdown
                deadline_countdown -= 1
                if deadline_countdown < 0:
                    deadline_countdown = deadline_stride - 1
                    if time.perf_counter() > deadline:
                        for lane in live:
                            outcomes[lane] = BatchLaneOutcome(
                                signature=sigs[lane],
                                steps=iteration + 1,
                                converged=False,
                                timed_out=True,
                                timeout_step=iteration,
                            )
                        break
            iteration += 1
        return outcomes  # type: ignore[return-value]
