"""The mask-level scenario simulator: whole executions as pure int ops.

:class:`SignatureSimulator` drives a compiled
:class:`~repro.kernels.signature.SignatureExpander` through an entire
convergence phase — scheduler decisions, work and round accounting,
convergence detection and the cooperative deadline — without materialising a
single :class:`~repro.core.graph.Orientation` or automaton state:

* the **sink set is maintained incrementally**: a step by node ``i`` can
  only change the sink status of ``i`` itself and of the neighbours whose
  edge it flipped, so each step updates ``O(deg(i))`` candidates via one
  XOR/AND membership test each instead of rescanning the graph;
* **work accounting is signature-XOR**: ``edge_reversals`` is the popcount
  of ``pre ^ post`` over the edge bits, and an actor's step is a dummy step
  iff the XOR misses its incident-edge mask — the same arithmetic
  :class:`repro.analysis.work.WorkObserver` uses, minus the state objects;
* **rounds** replicate the experiment runner's scheduler-independent round
  rule (a new round starts whenever an actor takes its second step since
  the round began), tracking actor *nodes* so the count keeps accumulating
  across churn phases whose instances re-index the ids;
* the **deadline** is checked every :data:`DEADLINE_CHECK_STRIDE` steps
  (always including the first), mirroring the legacy observer's stride.

The object-level execution engine (:func:`repro.automata.executions.run`)
remains the documented oracle; the experiment runner's differential tests
pin the two paths to field-for-field identical results.

:class:`KernelCache` is the per-process amortiser: campaign workers execute
chunks of scenarios that mostly share ``(family, size, topology_seed)``
topologies, so instances and compiled kernels are LRU-cached with hit/miss
counters that surface in ``repro sweep --json``.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.graph import LinkReversalInstance
from repro.kernels.schedulers import MaskScheduler
from repro.kernels.signature import PartialReversalExpander, SignatureExpander
from repro.telemetry.metrics import MetricsRegistry

#: Steps between wall-clock reads of a cooperative deadline.  The first step
#: of every phase is always checked, so an already-expired budget aborts
#: immediately (exact-timeout semantics); past that, a run may overshoot its
#: deadline by at most ``stride - 1`` steps.
DEADLINE_CHECK_STRIDE = 64

#: Default :class:`KernelCache` capacity of the per-process engine caches.
#: Sized to hold a full campaign axis sweep's worth of topologies (families ×
#: sizes × replicates regularly reaches several dozen distinct instances).
DEFAULT_CACHE_CAPACITY = 64

#: Environment variable overriding the per-process engine cache capacity.
CACHE_CAPACITY_ENV = "REPRO_KERNEL_CACHE_CAPACITY"


def cache_capacity_from_env(default: int = DEFAULT_CACHE_CAPACITY) -> int:
    """The engine cache capacity, honouring :data:`CACHE_CAPACITY_ENV`.

    Campaigns with very wide topology axes (many families × sizes ×
    replicates per worker chunk) can raise the capacity without a code
    change; malformed or non-positive values fall back to ``default``.
    """
    raw = os.environ.get(CACHE_CAPACITY_ENV)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 1 else default


class DeadlineExceeded(Exception):
    """Raised by the hot loop when a phase passes its wall-clock deadline."""


class WorkTally:
    """Accumulated work counters of one scenario (across all its phases)."""

    __slots__ = ("node_steps", "edge_reversals", "dummy_steps")

    def __init__(self) -> None:
        self.node_steps = 0
        self.edge_reversals = 0
        self.dummy_steps = 0


class RoundTally:
    """Scheduler-independent round counter (the ``_RoundObserver`` rule).

    A round ends when an actor takes its second step since the round began.
    Actors are tracked as *nodes*, not ids, so the tally keeps accumulating
    across churn phases that rebuild the instance (ids may be re-assigned,
    node identities are stable).
    """

    __slots__ = ("rounds", "_seen")

    def __init__(self) -> None:
        self.rounds = 0
        self._seen: Set[Hashable] = set()

    def observe(self, actor_ids: Tuple[int, ...], nodes: Tuple[Hashable, ...]) -> None:
        """Record one action by the nodes with the given ids."""
        if self.rounds == 0:
            self.rounds = 1
        seen = self._seen
        if len(actor_ids) == 1:  # the overwhelmingly common single-node action
            node = nodes[actor_ids[0]]
            if node in seen:
                self.rounds += 1
                self._seen = {node}
            else:
                seen.add(node)
            return
        for i in actor_ids:
            if nodes[i] in seen:
                self.rounds += 1
                self._seen = {nodes[j] for j in actor_ids}
                return
        for i in actor_ids:
            seen.add(nodes[i])


@dataclass
class PhaseOutcome:
    """Result of one convergence phase of the simulator.

    ``signature`` is the kernel-encoded final signature (mask plus packed
    bookkeeping); ``converged`` is ``True`` iff the phase reached quiescence
    rather than the step bound.
    """

    signature: int
    steps: int
    converged: bool


class SignatureSimulator:
    """Executes convergence phases of one kernel entirely on int signatures."""

    def __init__(self, kernel: SignatureExpander):
        self.kernel = kernel
        self.instance: LinkReversalInstance = kernel.instance
        instance = self.instance
        node_id = instance._node_id
        #: per node id: incident neighbours as ids, aligned with the CSR lists
        self.neighbour_ids: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(node_id[v] for v in row) for row in instance._incident_nbrs
        )
        # per node id: (edge bit, neighbour id) pairs for the sink updates
        self._incident: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple(
                (1 << e, j)
                for e, j in zip(instance._incident_eids[i], self.neighbour_ids[i])
            )
            for i in range(instance.node_count)
        )
        self._can_sink = [False] * instance.node_count
        for i in kernel._sink_candidates:
            self._can_sink[i] = True
        #: whether the kernel accepts multi-id actions (PR's ``reverse(S)``);
        #: a plain attribute — schedulers read it on every select call
        self.supports_subsets = isinstance(kernel, PartialReversalExpander)

    def initial_signature(self) -> int:
        """The kernel's initial signature (fresh bookkeeping, initial mask)."""
        return self.kernel.initial_signature()

    def sink_id_set(self, sig: int) -> Set[int]:
        """The non-destination sink ids of ``sig`` as a mutable set."""
        return set(self.kernel.sink_ids(sig))

    def run_phase(
        self,
        scheduler: MaskScheduler,
        *,
        max_steps: Optional[int] = None,
        work: Optional[WorkTally] = None,
        rounds: Optional[RoundTally] = None,
        deadline: Optional[float] = None,
        deadline_stride: int = DEADLINE_CHECK_STRIDE,
        trace: Optional[List[Tuple[int, ...]]] = None,
        initial_signature: Optional[int] = None,
        dead_ids: Optional[Set[int]] = None,
    ) -> PhaseOutcome:
        """Run one phase to quiescence, a step bound or the deadline.

        ``work`` and ``rounds`` tallies are updated in place (pass the same
        objects across the phases of a scenario to accumulate, as the object
        path shares its observers across phases).  ``trace``, when given,
        receives the actor-id tuple of every action taken.  A blown
        ``deadline`` raises :class:`DeadlineExceeded` *after* the current
        step's tallies are recorded, matching the legacy observer order.

        ``dead_ids`` are crash-stopped nodes (the ``node_faults`` axis): they
        keep their height but never reverse, so they are excluded from the
        schedulable sink set for the whole phase.  Quiescence then means "no
        *live* non-destination sink" — live neighbours of a dead sink may
        keep reversing against it until the step bound, exactly the
        unbounded-work behaviour an unreachable destination induces.
        """
        if max_steps is None:
            from repro.automata.executions import DEFAULT_MAX_STEPS

            max_steps = DEFAULT_MAX_STEPS
        kernel = self.kernel
        sig = (
            kernel.initial_signature()
            if initial_signature is None
            else initial_signature
        )
        scheduler.bind(self)
        sinks = self.sink_id_set(sig)

        edge_mask = kernel._edge_mask
        inc = kernel._inc
        tail = kernel._tail
        incident = self._incident
        can_sink = self._can_sink
        if dead_ids:
            # crash-stopped nodes are unschedulable: a copied can_sink (the
            # shared list must stay intact for fault-free phases) keeps them
            # out of the incremental sink updates, and the initial sink set
            # drops them up front
            can_sink = list(can_sink)
            for i in dead_ids:
                can_sink[i] = False
            sinks.difference_update(dead_ids)
        nodes = self.instance.nodes
        step = kernel.step
        select = scheduler.select

        steps = 0
        converged = False
        deadline_countdown = 0
        while steps < max_steps:
            actors = select(self, sig, sinks)
            if actors is None:
                converged = True
                break
            if trace is not None:
                trace.append(actors)
            new_sig = sig
            for i in actors:
                new_sig = step(new_sig, i)
            xor = (sig ^ new_sig) & edge_mask
            mask = new_sig & edge_mask
            if work is not None:
                work.node_steps += len(actors)
                work.edge_reversals += xor.bit_count()
            for i in actors:
                if xor & inc[i]:
                    sinks.discard(i)
                    for edge_bit, j in incident[i]:
                        # a flipped edge now points at j: j may have become a
                        # sink (it cannot have stopped being one)
                        if (
                            xor & edge_bit
                            and can_sink[j]
                            and not ((mask ^ tail[j]) & inc[j])
                        ):
                            sinks.add(j)
                elif work is not None:
                    work.dummy_steps += 1
            if rounds is not None:
                rounds.observe(actors, nodes)
            if deadline is not None:
                deadline_countdown -= 1
                if deadline_countdown < 0:
                    deadline_countdown = deadline_stride - 1
                    if time.perf_counter() > deadline:
                        raise DeadlineExceeded(f"deadline exceeded at step {steps}")
            sig = new_sig
            steps += 1
        else:
            # step bound reached without the scheduler declaring quiescence
            converged = not sinks

        return PhaseOutcome(signature=sig, steps=steps, converged=converged)


class KernelCache:
    """LRU cache of instances and compiled kernels with hit/miss counters.

    Campaign chunks execute many scenarios over few distinct topologies
    (every algorithm × scheduler × failure-model cell of one replicate shares
    a ``(family, size, topology_seed)`` instance), so a small per-process
    cache amortises both topology construction and kernel compilation.
    Instances are immutable and kernels hold no run state, so sharing them
    across scenarios is safe.  Stats are cumulative; callers snapshot
    :meth:`stats` around a chunk to report deltas.

    The counters live in a :class:`~repro.telemetry.metrics.MetricsRegistry`
    (``metrics``, prefixed by ``prefix``) so the three per-process engine
    caches all report into the shared ``ENGINE_METRICS`` namespace; a bare
    ``KernelCache()`` gets a private registry and behaves exactly as before.
    """

    def __init__(
        self,
        capacity: int = 16,
        metrics: Optional[MetricsRegistry] = None,
        prefix: str = "",
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._instances: "OrderedDict[Hashable, LinkReversalInstance]" = OrderedDict()
        # values are whatever the caller compiles: a bare SignatureExpander
        # or a wrapper built on one (the runner caches whole simulators)
        self._kernels: "OrderedDict[Tuple[Hashable, str], object]" = OrderedDict()
        if metrics is None:
            metrics = MetricsRegistry()
        self._instance_hits = metrics.counter(prefix + "instance_hits")
        self._instance_builds = metrics.counter(prefix + "instance_builds")
        self._kernel_hits = metrics.counter(prefix + "kernel_hits")
        self._kernel_compiles = metrics.counter(prefix + "kernel_compiles")

    # counters are registry-backed; these properties keep the historical
    # integer-attribute read API (`cache.instance_hits`) working
    @property
    def instance_hits(self) -> int:
        return self._instance_hits.value

    @property
    def instance_builds(self) -> int:
        return self._instance_builds.value

    @property
    def kernel_hits(self) -> int:
        return self._kernel_hits.value

    @property
    def kernel_compiles(self) -> int:
        return self._kernel_compiles.value

    def set_capacity(self, capacity: int) -> None:
        """Resize the cache, evicting least-recently-used entries if shrinking."""
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        while len(self._instances) > self.capacity:
            evicted, _ = self._instances.popitem(last=False)
            for kernel_key in [k for k in self._kernels if k[0] == evicted]:
                del self._kernels[kernel_key]

    def instance(
        self, key: Hashable, build: Callable[[], LinkReversalInstance]
    ) -> LinkReversalInstance:
        """The cached instance for ``key``, building (and caching) on a miss."""
        cached = self._instances.get(key)
        if cached is not None:
            self._instances.move_to_end(key)
            self._instance_hits.inc()
            return cached
        self._instance_builds.inc()
        instance = build()
        self._instances[key] = instance
        if len(self._instances) > self.capacity:
            evicted, _ = self._instances.popitem(last=False)
            for kernel_key in [k for k in self._kernels if k[0] == evicted]:
                del self._kernels[kernel_key]
        return instance

    def kernel(
        self,
        key: Hashable,
        algorithm: str,
        compile_kernel: Callable[[], Optional[object]],
    ) -> Optional[object]:
        """The cached compiled object for ``(key, algorithm)``.

        The value is whatever ``compile_kernel`` builds — a
        :class:`~repro.kernels.signature.SignatureExpander` or a wrapper on
        one (e.g. a :class:`SignatureSimulator`).  A ``None`` result (no
        kernel for this automaton) is not cached — those callers fall back
        to the object path anyway.
        """
        kernel_key = (key, algorithm)
        cached = self._kernels.get(kernel_key)
        if cached is not None:
            self._kernels.move_to_end(kernel_key)
            self._kernel_hits.inc()
            return cached
        self._kernel_compiles.inc()
        kernel = compile_kernel()
        if kernel is not None:
            self._kernels[kernel_key] = kernel
        return kernel

    def stats(self) -> Dict[str, int]:
        """Cumulative cache counters (JSON-compatible)."""
        return {
            "instance_hits": self.instance_hits,
            "instance_builds": self.instance_builds,
            "kernel_hits": self.kernel_hits,
            "kernel_compiles": self.kernel_compiles,
        }

    def clear(self) -> None:
        """Drop every cached object (counters are kept — they are cumulative)."""
        self._instances.clear()
        self._kernels.clear()
