"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the workflows a user typically wants without writing code:

``run``
    Run one link-reversal algorithm on a generated topology and print the
    work summary (optionally the final orientation as DOT).
``compare``
    Run PR, OneStepPR, NewPR and FR on the same topology and print a
    comparison table.
``verify``
    Exhaustively model-check the paper's invariants and the acyclicity
    theorems over every connected DAG with up to N nodes.
``check``
    Exhaustively model-check one algorithm on one generated topology with
    the production engine: sharded multi-process frontier exploration over
    int state signatures (``--workers``), optional twin-node symmetry
    reduction (``--symmetry``) and disk-spilled visited set (``--spill``),
    with verdicts and replayable counterexample traces written into an
    experiments result store (``--store``, resumable).
``worst-case``
    Print the Θ(n_b²) worst-case sweep for FR and PR with a quadratic fit.
``game``
    Enumerate the restricted FR/PR strategy game on a small topology.
``simulate``
    Run the asynchronous message-passing protocol, optionally injecting
    random link failures, and print the network report.
``sweep``
    Expand a campaign cross-product (families × algorithms × schedulers ×
    sizes × replicates × failure models), execute it across a worker pool and
    persist every run in a resumable result store.
``report``
    Aggregate a result store: group-by work summaries, work-vs-size curves
    with quadratic fits, and the PR-vs-FR worst-case ordering check.
``trace``
    Summarise the ``telemetry.jsonl`` sidecar a sweep wrote next to its
    result store: top spans, per-engine scenario timings, worker timeline
    and the final metrics snapshot.
``fsck``
    Verify a result store's integrity: per-line CRC32 checksums, torn
    shard tails and index drift; quarantine corrupt lines and rebuild the
    SQLite index so an interrupted campaign resumes cleanly.

Every command accepts ``--seed`` so runs are reproducible, and ``-v`` /
``-vv`` raise the stderr log level (INFO / DEBUG) of the library loggers.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import logging
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.game_theory import (
    analyse_game,
    full_reversal_profile,
    partial_reversal_profile,
)
from repro.analysis.statistics import quadratic_fit_r2
from repro.analysis.work import count_reversals, kernel_count_reversals, worst_case_sweep
from repro.core.full_reversal import FullReversal
from repro.core.graph import LinkReversalInstance
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.distributed.fast_network import FastAsyncNetwork
from repro.distributed.network import DELAY_MODELS, AsyncLinkReversalNetwork
from repro.distributed.protocol import ReversalMode
from repro.experiments.aggregate import build_report
from repro.experiments.executor import run_campaign
from repro.experiments.runner import (
    ENGINE_ASYNC,
    ENGINE_CHOICES,
    ENGINE_DATAPLANE,
    ENGINE_KERNEL,
    ENGINE_LEGACY,
)
from repro.experiments.spec import ALGORITHM_FACTORIES, FAILURE_MODELS, CampaignSpec, derive_seed
from repro.experiments.store import ResultStore
from repro.exploration.checker import ModelChecker
from repro.exploration.enumerate_graphs import all_connected_dag_instances
from repro.exploration.state_space import explore_and_check
from repro.io.dot import orientation_to_dot
from repro.routing.maintenance import RouteMaintenanceSimulation
from repro.schedulers import SCHEDULER_FACTORIES
from repro import telemetry as _telemetry
from repro.telemetry.trace import check_span_nesting, summarise_telemetry, top_spans
from repro.schedulers.greedy import GreedyScheduler
from repro.topology.generators import FAMILY_NAMES, build_family
from repro.verification.acyclicity import is_acyclic
from repro.verification.invariants import newpr_invariant_checks, pr_invariant_checks


#: Algorithm / scheduler / topology tables — shared with the experiment
#: campaigns so the CLI axes and the campaign axes can never drift apart.
ALGORITHMS: Dict[str, Callable[[LinkReversalInstance], object]] = dict(ALGORITHM_FACTORIES)
SCHEDULERS: Dict[str, Callable[[int], object]] = dict(SCHEDULER_FACTORIES)
TOPOLOGIES = FAMILY_NAMES

#: Backwards-compatible alias; the implementation moved to
#: :func:`repro.topology.generators.build_family`.
build_topology = build_family


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    instance = build_topology(args.topology, args.nodes, args.seed)
    automaton = ALGORITHMS[args.algorithm](instance)
    # the compiled-kernel fast path and the object path are differentially
    # tested to produce identical summaries, so --engine only changes speed
    summary = None
    engine_used = ENGINE_LEGACY
    if args.engine != ENGINE_LEGACY:
        summary = kernel_count_reversals(
            automaton, args.scheduler, seed=args.seed, max_steps=args.max_steps
        )
        if summary is not None:
            engine_used = ENGINE_KERNEL
        elif args.engine == ENGINE_KERNEL:
            print(f"error: no kernel fast path for algorithm {args.algorithm!r}; "
                  f"use --engine legacy", file=sys.stderr)
            return 2
    if summary is None:
        scheduler = SCHEDULERS[args.scheduler](args.seed)
        summary = count_reversals(automaton, scheduler, max_steps=args.max_steps)
    if args.json:
        payload = summary.to_dict()
        payload.update(
            engine=engine_used,
            topology=args.topology,
            nodes=instance.node_count,
            edges=instance.edge_count,
            bad_nodes=len(instance.bad_nodes()),
            seed=args.seed,
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"topology      : {args.topology} ({instance.node_count} nodes, "
              f"{instance.edge_count} edges, {len(instance.bad_nodes())} bad)")
        print(f"algorithm     : {summary.algorithm}")
        print(f"scheduler     : {summary.scheduler}")
        print(f"engine        : {engine_used}")
        print(f"node steps    : {summary.node_steps}")
        print(f"edge reversals: {summary.edge_reversals}")
        print(f"dummy steps   : {summary.dummy_steps}")
        print(f"converged     : {summary.converged}")
        print(f"dest oriented : {summary.destination_oriented}")
    if args.dot:
        from repro.automata.executions import run as run_execution

        result = run_execution(
            ALGORITHMS[args.algorithm](instance), SCHEDULERS[args.scheduler](args.seed)
        )
        orientation = getattr(result.final_state, "orientation", None)
        if orientation is None:
            orientation = result.final_state.to_orientation()
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(orientation_to_dot(orientation))
        print(f"final orientation written to {args.dot}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    instance = build_topology(args.topology, args.nodes, args.seed)
    # every algorithm gets its own seed derived from --seed and its name, so
    # the randomised schedulers are not correlated across the compared runs
    # (a shared schedule would make the comparison hinge on one sample)
    results = {
        name: count_reversals(
            factory(instance),
            SCHEDULERS[args.scheduler](derive_seed(args.seed, "compare", name)),
        )
        for name, factory in ALGORITHMS.items()
    }
    if args.json:
        payload = {
            "topology": args.topology,
            "nodes": instance.node_count,
            "seed": args.seed,
            "scheduler": args.scheduler,
            "results": {name: summary.to_dict() for name, summary in results.items()},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{'algorithm':<12} {'steps':>8} {'reversals':>10} {'dummy':>6} {'oriented':>9}")
    for summary in results.values():
        print(f"{summary.algorithm:<12} {summary.node_steps:>8} {summary.edge_reversals:>10} "
              f"{summary.dummy_steps:>6} {str(summary.destination_oriented):>9}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    total_failures = 0
    graphs = 0
    states = 0
    for size in range(2, args.max_nodes + 1):
        for instance in all_connected_dag_instances(size):
            graphs += 1
            for automaton_class, predicates in (
                (PartialReversal, pr_invariant_checks()),
                (NewPartialReversal, newpr_invariant_checks()),
                (FullReversal, {"acyclic": is_acyclic}),
            ):
                report = explore_and_check(automaton_class(instance), dict(predicates))
                states += report.states_explored
                total_failures += len(report.failures)
    print(f"checked {graphs} graphs, {states} automaton states")
    print(f"violations: {total_failures}")
    if total_failures == 0:
        print("all invariants and acyclicity claims hold on every reachable state")
    return 0 if total_failures == 0 else 1


#: Invariant groups selectable via ``repro check --invariants``.
CHECK_INVARIANTS = ("acyclic", "progress", "paper")


def _check_run_id(args: argparse.Namespace) -> str:
    """Stable content hash identifying one ``repro check`` verification run.

    Workers, spill, vectorisation and store layout are excluded — they
    change how the check executes, not what it verifies (the vectorised and
    scalar engines are differentially pinned to identical verdicts) — so a
    resumed run with different parallelism still matches the stored verdict.  (One caveat: when
    ``--max-states`` actually truncates, the sharded cap is round-granular,
    so a stored truncated verdict's ``states_explored`` may differ slightly
    from what a single-process re-run would count; exhaustive verdicts are
    configuration-independent.)
    """
    identity = {
        "kind": "check",
        "family": args.topology,
        "size": args.nodes,
        "algorithm": args.algorithm,
        "seed": args.seed,
        "invariants": sorted(_csv(args.invariants)),
        "max_states": args.max_states,
        "single_actions": args.single_actions,
        "symmetry": args.symmetry,
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]


def cmd_check(args: argparse.Namespace) -> int:
    invariants = _csv(args.invariants)
    unknown = set(invariants) - set(CHECK_INVARIANTS)
    if unknown:
        print(f"error: unknown invariant group(s) {sorted(unknown)}; "
              f"choose from {', '.join(CHECK_INVARIANTS)}", file=sys.stderr)
        return 2

    run_id = _check_run_id(args)
    store = ResultStore(args.store) if args.store else None
    if store is not None and not args.no_resume and run_id in store.existing_run_ids():
        stored = store.records(run_id=run_id)[0]
        if args.json:
            stored["skipped"] = True
            print(json.dumps(stored, indent=2, sort_keys=True))
        else:
            print(f"check {run_id} already stored (status {stored['status']}); "
                  f"use --no-resume to re-verify")
        return 0 if stored["status"] in ("ok", "truncated") else 1

    instance = build_topology(args.topology, args.nodes, args.seed)
    automaton = ALGORITHMS[args.algorithm](instance)
    predicates = {}
    if "paper" in invariants:
        if args.algorithm in ("pr", "onestep-pr"):
            predicates.update(pr_invariant_checks())
        elif args.algorithm == "new-pr":
            predicates.update(newpr_invariant_checks())
        else:
            print(f"warning: no paper invariant bundle for {args.algorithm!r}; "
                  f"checking structural invariants only", file=sys.stderr)

    try:
        checker = ModelChecker(
            automaton,
            predicates,
            max_states=args.max_states,
            workers=args.workers,
            single_actions_only=args.single_actions,
            symmetry=args.symmetry,
            check_acyclicity="acyclic" in invariants,
            check_progress="progress" in invariants,
            spill_threshold=args.spill_threshold if args.spill else None,
            spill_dir=args.spill_dir,
            spill_max_runs=args.spill_max_runs,
            vectorized=args.vectorized,
            max_traced_failures=args.max_traced,
        )
        if store is not None and not args.no_telemetry:
            with _telemetry.session(sink=store.record_telemetry) as (registry, tracer):
                report = checker.run()
                tracer.emit({
                    "kind": "metrics",
                    "t": round(tracer.now(), 6),
                    **registry.snapshot(),
                })
        else:
            report = checker.run()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    record = report.to_record(
        run_id=run_id,
        kind="check",
        campaign=args.name,
        family=args.topology,
        size=args.nodes,
        algorithm=args.algorithm,
        scheduler="exhaustive",
        seed=args.seed,
        nodes=instance.node_count,
        edges=instance.edge_count,
        invariants=sorted(invariants),
        max_states=args.max_states,
        single_actions=args.single_actions,
        symmetry=args.symmetry,
    )
    if store is not None:
        store.append([record])

    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(f"topology      : {args.topology} ({instance.node_count} nodes, "
              f"{instance.edge_count} edges)")
        print(f"algorithm     : {report.automaton_name}")
        print(f"invariants    : {', '.join(report.predicate_names)}")
        print(f"states        : {report.states_explored}"
              + (" (truncated)" if report.truncated else " (exhaustive)"))
        print(f"transitions   : {report.transitions_explored}")
        print(f"max depth     : {report.max_depth}")
        print(f"quiescent     : {report.quiescent_states}")
        print(f"workers       : {report.workers}"
              + (" [vectorised]" if report.vectorized else "")
              + (" [symmetry-reduced]" if report.symmetry_reduced else "")
              + (" [spilled]" if report.spilled else ""))
        print(f"wall time     : {report.wall_time_s:.2f}s")
        print(f"violations    : {len(report.failures)}")
        for failure in report.failures[:args.max_traced]:
            print(f"  {failure.trace}")
        if store is not None:
            print(f"stored        : {run_id} -> {store.root}")
    return 1 if report.failures else 0


def cmd_worst_case(args: argparse.Namespace) -> int:
    sizes = range(1, args.max_bad + 1)
    fr_series = worst_case_sweep(sizes, FullReversal, GreedyScheduler)
    pr_series = worst_case_sweep(sizes, OneStepPartialReversal, GreedyScheduler)
    print(f"{'n_bad':>6} {'FR steps':>10} {'PR steps':>10}")
    for (n_bad, fr_steps), (_, pr_steps) in zip(fr_series, pr_series):
        print(f"{n_bad:>6} {fr_steps:>10} {pr_steps:>10}")
    if len(fr_series) >= 4:
        xs = [float(n) for n, _ in fr_series]
        ys = [float(s) for _, s in fr_series]
        coefficients, r2 = quadratic_fit_r2(xs, ys)
        print(f"FR quadratic fit: {coefficients[0]:.3f}x² + {coefficients[1]:.3f}x "
              f"+ {coefficients[2]:.3f}  (R²={r2:.5f})")
    return 0


def cmd_game(args: argparse.Namespace) -> int:
    instance = build_topology(args.topology, args.nodes, args.seed)
    players = len(instance.non_destination_nodes)
    if players > args.max_players:
        print(f"error: topology has {players} players; the game enumerates 2^players "
              f"profiles, refusing above --max-players={args.max_players}", file=sys.stderr)
        return 2
    analysis = analyse_game(instance)
    fr_profile = full_reversal_profile(instance)
    pr_profile = partial_reversal_profile(instance)
    print(f"players              : {players}")
    print(f"profiles             : {2 ** players}")
    print(f"all-FR social cost   : {analysis.cost_of(fr_profile)} "
          f"(equilibrium: {fr_profile in analysis.equilibria})")
    print(f"all-PR social cost   : {analysis.cost_of(pr_profile)} "
          f"(equilibrium: {pr_profile in analysis.equilibria})")
    print(f"global optimum       : {analysis.optimum_cost}")
    print(f"equilibria           : {len(analysis.equilibria)} "
          f"with costs {list(analysis.equilibrium_costs())}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    instance = build_topology(args.topology, args.nodes, args.seed)
    mode = ReversalMode.PARTIAL if args.mode == "partial" else ReversalMode.FULL
    if args.failures > 0:
        simulation = RouteMaintenanceSimulation(
            instance, mode=mode, loss_probability=args.loss, seed=args.seed
        )
        results = simulation.fail_random_links(args.failures)
        for result in results:
            print(f"  {result}")
        summary = simulation.summary()
        print("summary:")
        for key, value in summary.items():
            print(f"  {key}: {value:.2f}" if isinstance(value, float) else f"  {key}: {value}")
        return 0
    min_delay, max_delay, fifo = DELAY_MODELS[args.delay_model]
    # the two network engines are differentially pinned to identical reports,
    # so --engine only changes speed (fast is the campaign-scale default)
    network_class = (
        FastAsyncNetwork if args.engine != ENGINE_LEGACY else AsyncLinkReversalNetwork
    )
    network = network_class(
        instance,
        mode=mode,
        min_delay=min_delay,
        max_delay=max_delay,
        loss_probability=args.loss,
        seed=args.seed,
        fifo=fifo,
    )
    if args.loss > 0:
        # lost height updates are never retransmitted, so lossy runs recover
        # destination orientation through anti-entropy beacon rounds
        report = network.run_with_beacons(max_rounds=20)
    else:
        report = network.run_to_quiescence()
    print(report)
    return 0 if report.destination_oriented else 1


def _csv(text: str) -> tuple:
    """Split a comma-separated CLI list, dropping empties."""
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _fault_plan_from_args(args: argparse.Namespace):
    """A validated :class:`FaultPlan` from the ``--chaos-*`` flags, or ``None``."""
    rates = (args.chaos_crash, args.chaos_hang, args.chaos_slow, args.chaos_corrupt)
    if not any(rates):
        return None
    from repro.faults import FaultPlan

    plan = FaultPlan(
        seed=args.chaos_seed if args.chaos_seed is not None else args.seed,
        crash=args.chaos_crash,
        hang=args.chaos_hang,
        slow=args.chaos_slow,
        corrupt=args.chaos_corrupt,
        strikes=args.chaos_strikes,
    )
    plan.validate()
    return plan


def cmd_sweep(args: argparse.Namespace) -> int:
    delay_models = tuple(
        None if name == "none" else name for name in _csv(args.delay_models)
    )
    if args.engine == ENGINE_ASYNC:
        # an async sweep needs async cells: default the axis, drop sync cells
        if not delay_models:
            delay_models = ("uniform",)
        if None in delay_models:
            print("warning: --engine async cannot run synchronous cells; "
                  "dropping 'none' from --delay-models", file=sys.stderr)
            delay_models = tuple(m for m in delay_models if m is not None)
    elif not delay_models:
        delay_models = (None,)
    losses = tuple(float(p) for p in _csv(args.losses)) or (0.0,)
    traffics = tuple(
        None if name == "none" else name for name in _csv(args.traffics)
    )
    if args.engine == ENGINE_DATAPLANE:
        # a data-plane sweep needs traffic cells: default the axis, drop
        # control-plane-only cells
        if not traffics:
            traffics = ("steady",)
        if None in traffics:
            print("warning: --engine dataplane cannot run cells without "
                  "traffic; dropping 'none' from --traffics", file=sys.stderr)
            traffics = tuple(t for t in traffics if t is not None)
    elif not traffics:
        traffics = (None,)
    campaign = CampaignSpec(
        name=args.name,
        families=_csv(args.families),
        algorithms=_csv(args.algorithms),
        schedulers=_csv(args.schedulers),
        sizes=tuple(int(s) for s in _csv(args.sizes)),
        replicates=args.replicates,
        base_seed=args.seed,
        failure_models=[(args.failure_model, args.failure_count)],
        max_steps=args.max_steps,
        delay_models=delay_models,
        losses=losses,
        traffics=traffics,
        node_fault_counts=tuple(int(k) for k in _csv(args.node_faults)) or (0,),
    )
    if args.failure_model == "mobility":
        dropped = [f for f in campaign.families if f != "geometric"]
        if dropped:
            print(f"warning: mobility only applies to the geometric family; "
                  f"dropping {', '.join(dropped)} from the cross-product", file=sys.stderr)
    if campaign.run_count == 0:
        print("error: the campaign cross-product expands to zero runs", file=sys.stderr)
        return 2
    try:
        fault_plan = _fault_plan_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = ResultStore(args.store)

    report = run_campaign(
        campaign,
        store,
        workers=args.workers,
        chunk_size=args.chunk_size,
        timeout_s=args.timeout,
        resume=not args.no_resume,
        progress=_make_progress(args.quiet),
        engine=args.engine,
        telemetry=not args.no_telemetry,
        fault_plan=fault_plan,
        watchdog_s=args.watchdog,
        max_retries=args.max_retries,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        engines = ", ".join(f"{k}={v}" for k, v in sorted(report.engines.items())) or "-"
        cache = ", ".join(f"{k}={v}" for k, v in sorted(report.kernel_cache.items())) or "-"
        print(f"campaign      : {campaign.name} ({report.total} runs)")
        print(f"store         : {store.root}")
        print(f"skipped       : {report.skipped} (already stored)")
        print(f"executed      : {report.executed} with {report.workers} worker(s)")
        print(f"ok/err/timeout/crash: {report.ok}/{report.errors}/{report.timeouts}/{report.crashed}")
        print(f"engines       : {engines}")
        print(f"kernel cache  : {cache}")
        print(f"wall time     : {report.wall_time_s:.2f}s "
              f"({report.runs_per_second:.1f} runs/s)")
        resilience = {
            "retries": report.retries,
            "watchdog_kills": report.watchdog_kills,
            "pool_reforms": report.pool_reforms,
            "corrupt_chunks": report.corrupt_chunks,
            "degraded_serial": report.degraded_serial,
        }
        if report.faults_injected or any(resilience.values()):
            kinds = ", ".join(
                f"{k}={v}" for k, v in sorted(report.fault_kinds.items())
            ) or "-"
            healing = ", ".join(f"{k}={v}" for k, v in resilience.items() if v) or "-"
            print(f"faults        : {report.faults_injected} injected ({kinds})")
            print(f"self-healing  : {healing}")
        if report.execution_wall_s:
            print(f"utilisation   : {report.worker_utilisation:.0%} "
                  f"({report.cpu_time_s:.2f}s CPU over {report.execution_wall_s:.2f}s)")
        if not args.no_telemetry:
            print(f"telemetry     : {store.telemetry_path} "
                  f"(inspect with `repro trace {store.root}`)")
    return 0 if report.errors == 0 and report.crashed == 0 else 1


def _make_progress(quiet: bool) -> Optional[Callable[[int, int], None]]:
    """Per-chunk progress callback for ``repro sweep`` (``None`` when quiet).

    On a TTY the line rewrites itself in place with a live rate and ETA; when
    stderr is redirected it falls back to one plain append-only line per
    update, so logs stay diffable.
    """
    if quiet:
        return None
    if sys.stderr.isatty():
        start = time.perf_counter()

        def live(done: int, total: int) -> None:
            elapsed = time.perf_counter() - start
            rate = done / elapsed if elapsed > 0 else 0.0
            eta = (total - done) / rate if rate > 0 else 0.0
            end = "\n" if done >= total else ""
            print(f"\r  {done}/{total} runs ({rate:.0f}/s, ETA {eta:.0f}s)  ",
                  end=end, file=sys.stderr, flush=True)

        return live

    def plain(done: int, total: int) -> None:
        print(f"  {done}/{total} runs completed", file=sys.stderr)

    return plain


def cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if args.consolidate:
        store.consolidate()
    if not store.existing_run_ids():  # consolidates from shards if index is missing
        print(f"error: no stored runs under {store.root}", file=sys.stderr)
        return 2
    data = build_report(store, by=_csv(args.by), metric=args.metric)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0

    print(f"store    : {data['store']}")
    print(f"statuses : {data['status_counts']}")
    print(f"engines  : {data['engine_counts']}")
    last = data.get("last_campaign_report") or {}
    if last.get("kernel_cache"):
        cache = ", ".join(f"{k}={v}" for k, v in sorted(last["kernel_cache"].items()) if v)
        print(f"last sweep: engines {last.get('engines')}; cache {cache or '-'}")
    invariants = data["invariants"]
    print(f"invariants: {invariants['runs']} ok runs, "
          f"{invariants['acyclic_final']} acyclic, "
          f"{invariants['destination_oriented']} destination oriented, "
          f"{invariants['violations']} violations")
    async_stats = data.get("async") or {}
    if async_stats.get("runs"):
        print(f"async    : {async_stats['runs']} runs")
        for model, stats in async_stats["by_delay_model"].items():
            print(f"  {model:<8} runs={stats['runs']} "
                  f"msgs={stats['mean_messages']:.1f} lost={stats['mean_lost']:.1f} "
                  f"sim_t={stats['mean_simulated_time']:.1f} "
                  f"reversals={stats['mean_reversals']:.1f}")
    plane_stats = data.get("dataplane") or {}
    if plane_stats.get("runs"):
        print(f"dataplane: {plane_stats['runs']} runs")
        for model, stats in plane_stats["by_traffic"].items():
            ratio = stats["delivery_ratio"]
            latency = stats["mean_latency_slots"]
            stretch = stats["mean_stretch"]
            print(f"  {model:<8} runs={stats['runs']} "
                  f"injected={stats['injected']} "
                  f"delivered={stats['delivered']} "
                  f"ratio={ratio if ratio is not None else '-'} "
                  f"drops(tail/ttl/route/link)="
                  f"{stats['drop_tail']}/{stats['drop_ttl']}/"
                  f"{stats['drop_no_route']}/{stats['drop_link_down']} "
                  f"loops={stats['transient_loops']} "
                  f"latency={latency if latency is not None else '-'} "
                  f"stretch={stretch if stretch is not None else '-'}")
    resilience = data.get("resilience") or {}
    if resilience.get("faulted_runs"):
        print(f"resilience: {resilience['faulted_runs']} crash-stop runs")
        for level, stats in resilience["by_node_faults"].items():
            print(f"  node_faults={level} runs={stats['runs']} "
                  f"quiescent={stats['converged']} "
                  f"mean_steps={stats['mean_steps']:.1f}")
    if resilience.get("executor"):
        healing = ", ".join(
            f"{k}={v}" for k, v in sorted(resilience["executor"].items())
            if k != "fault_kinds"
        )
        print(f"last sweep self-healing: {healing}")

    header = f"{'group (' + '/'.join(data['group_by']) + ')':<32}"
    print(f"\n{header} {'count':>6} {'mean':>10} {'p50':>8} {'p90':>8} {'max':>10}")
    for key, stats in data["groups"].items():
        print(f"{key:<32} {stats['count']:>6} {stats['mean']:>10.1f} "
              f"{stats['p50']:>8.1f} {stats['p90']:>8.1f} {stats['max']:>10.1f}")

    fitted = {k: c for k, c in data["curves"].items() if c["fit"] is not None}
    if fitted:
        print(f"\n{'work curve':<32} {'fit (ax²+bx+c)':<28} {'R²':>8}")
        for key, curve in fitted.items():
            a, b, c = curve["fit"]
            print(f"{key:<32} {a:>8.3f}x² {b:>+8.3f}x {c:>+8.3f} {curve['r2']:>8.5f}")

    ordering = data["pr_vs_fr"]
    if ordering["comparison"]:
        print(f"\nPR vs FR worst-case ordering on {ordering['family']!r} "
              f"({ordering['metric']}):")
        for row in ordering["comparison"]:
            ratio = f"{row['ratio']:.2f}" if row["ratio"] else "-"
            print(f"  size {row['size']:>4}: PR={row['pr']:>10.1f} "
                  f"FR={row['fr']:>10.1f} FR/PR={ratio:>7}")
        print(f"  ordering holds: {ordering['ordering_holds']}")

    telemetry = data.get("telemetry")
    if telemetry:
        print("\n## Telemetry")
        print(f"sidecar events: {telemetry['events']}")
        for row in top_spans(telemetry, 5):
            print(f"  span {row['name']:<12} count={row['count']:<6} "
                  f"total={row['total_s']:.3f}s max={row['max_s']:.4f}s")
        for engine, stats in telemetry["scenarios"].items():
            wall = stats["wall_s"]
            print(f"  engine {engine:<10} runs={stats['count']:<6} "
                  f"mean={wall['mean'] * 1e3:.2f}ms p90={wall['p90'] * 1e3:.2f}ms")
        for pid, worker in telemetry["workers"].items():
            print(f"  worker {pid:<10} chunks={worker['chunks']:<4} "
                  f"runs={worker['runs']:<6} busy={worker['busy_s']:.3f}s")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if not store.telemetry_path.exists():
        print(f"error: no telemetry sidecar at {store.telemetry_path}; "
              f"run `repro sweep` without --no-telemetry first", file=sys.stderr)
        return 2
    events = list(store.iter_telemetry())
    summary = summarise_telemetry(events)
    problems = check_span_nesting(events)
    if args.json:
        payload = {
            "store": str(store.root),
            "summary": summary,
            "nesting_problems": problems,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if problems else 0

    print(f"store   : {store.root}")
    print(f"events  : {summary['events']}")

    rows = top_spans(summary, args.top)
    if rows:
        print(f"\n{'span':<16} {'count':>8} {'total_s':>10} {'max_s':>10}")
        for row in rows:
            print(f"{row['name']:<16} {row['count']:>8} "
                  f"{row['total_s']:>10.4f} {row['max_s']:>10.4f}")

    if summary["scenarios"]:
        print(f"\n{'engine':<12} {'runs':>7} {'mean_ms':>9} {'p50_ms':>8} "
              f"{'p90_ms':>8} {'max_ms':>9} statuses")
        for engine, stats in summary["scenarios"].items():
            wall = stats["wall_s"]
            statuses = ", ".join(f"{k}={v}" for k, v in stats["statuses"].items())
            print(f"{engine:<12} {stats['count']:>7} {wall['mean'] * 1e3:>9.3f} "
                  f"{wall['p50'] * 1e3:>8.3f} {wall['p90'] * 1e3:>8.3f} "
                  f"{wall['max'] * 1e3:>9.3f} {statuses}")

    if summary["workers"]:
        print(f"\n{'worker':<12} {'chunks':>7} {'runs':>7} {'busy_s':>9} {'cpu_s':>9}")
        for pid, worker in summary["workers"].items():
            print(f"{pid:<12} {worker['chunks']:>7} {worker['runs']:>7} "
                  f"{worker['busy_s']:>9.4f} {worker['cpu_s']:>9.4f}")

    if summary["counters"]:
        print("\ncounters:")
        for name, value in summary["counters"].items():
            print(f"  {name:<36} {value}")
    if summary["gauges"]:
        print("gauges:")
        for name, value in summary["gauges"].items():
            print(f"  {name:<36} {value}")
    if summary.get("histograms"):
        print("histograms:")
        for name, h in summary["histograms"].items():
            print(f"  {name:<36} count={h['count']} mean={h['mean']:.1f} "
                  f"min={h['min']:.0f} max={h['max']:.0f}")
    if summary["point_events"]:
        print("events:")
        for name, value in summary["point_events"].items():
            print(f"  {name:<36} {value}")

    if problems:
        print(f"\nspan nesting problems ({len(problems)}):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    report = store.fsck(repair=not args.no_repair)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 1 if report["bad_lines"] and args.no_repair else 0

    print(f"store        : {store.root}")
    print(f"shards       : {report['shards']}")
    print(f"records      : {report['records']} "
          f"({report['checksummed_lines']} checksummed, "
          f"{report['legacy_lines']} legacy)")
    print(f"bad lines    : {len(report['bad_lines'])}")
    for bad in report["bad_lines"][:args.max_shown]:
        print(f"  {bad['shard']}:{bad['line']}: {bad['reason']}")
    if len(report["bad_lines"]) > args.max_shown:
        print(f"  ... and {len(report['bad_lines']) - args.max_shown} more")
    if report["truncated_tails"]:
        print(f"torn tails   : {len(report['truncated_tails'])} "
              "(interrupted append)")
    if report["quarantined"]:
        print(f"quarantined  : {len(report['bad_lines'])} line(s) -> "
              f"{store.quarantine_dir}")
    if report["repaired"]:
        print(f"index        : rebuilt with {report['index_records']} record(s)")
    else:
        print("index        : untouched (--no-repair)")
    if not report["bad_lines"]:
        print("store is clean")
        return 0
    return 1 if args.no_repair else 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Link reversal algorithms (Partial Reversal Acyclicity reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log to stderr: -v for INFO, -vv for DEBUG")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one algorithm on a topology")
    run_parser.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="pr")
    run_parser.add_argument("--topology", choices=TOPOLOGIES, default="chain")
    run_parser.add_argument("--nodes", type=int, default=20)
    run_parser.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="greedy")
    run_parser.add_argument("--max-steps", type=int, default=None)
    run_parser.add_argument("--engine", choices=ENGINE_CHOICES, default="auto",
                            help="execution engine: compiled int kernels (auto/kernel) "
                                 "or the object-level oracle (legacy)")
    run_parser.add_argument("--dot", help="write the final orientation to this DOT file")
    run_parser.add_argument("--json", action="store_true",
                            help="print the work summary as JSON")
    run_parser.set_defaults(handler=cmd_run)

    compare_parser = subparsers.add_parser("compare", help="compare all algorithms")
    compare_parser.add_argument("--topology", choices=TOPOLOGIES, default="chain")
    compare_parser.add_argument("--nodes", type=int, default=20)
    compare_parser.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="greedy")
    compare_parser.add_argument("--json", action="store_true",
                                help="print the comparison as JSON")
    compare_parser.set_defaults(handler=cmd_compare)

    verify_parser = subparsers.add_parser(
        "verify", help="exhaustively model-check the paper's invariants"
    )
    verify_parser.add_argument("--max-nodes", type=int, default=4)
    verify_parser.set_defaults(handler=cmd_verify)

    check_parser = subparsers.add_parser(
        "check",
        help="exhaustively model-check one algorithm with the sharded engine",
    )
    check_parser.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="pr")
    check_parser.add_argument("--topology", choices=TOPOLOGIES, default="chain")
    check_parser.add_argument("--nodes", type=int, default=8)
    check_parser.add_argument("--invariants", default="acyclic,progress",
                              help=f"comma-separated invariant groups "
                                   f"({','.join(CHECK_INVARIANTS)})")
    check_parser.add_argument("--max-states", type=int, default=1_000_000,
                              help="truncation bound on distinct states")
    check_parser.add_argument("--workers", type=int, default=1,
                              help="shard the signature space over this many processes")
    check_parser.add_argument("--single-actions", action="store_true",
                              help="restrict PR to singleton reverse({u}) actions")
    check_parser.add_argument("--symmetry", action="store_true",
                              help="canonicalise over twin-node permutations "
                                   "(sound for label-invariant predicates only)")
    check_parser.add_argument("--spill", action="store_true",
                              help="spill the visited set to disk beyond --spill-threshold")
    check_parser.add_argument("--spill-threshold", type=int, default=1_000_000,
                              help="in-memory signatures per worker before spilling")
    check_parser.add_argument("--spill-dir", default=None,
                              help="directory for spill runs (default: a temp dir)")
    check_parser.add_argument("--spill-max-runs", type=int, default=8,
                              help="compact spill runs down to one once more than "
                                   "this many accumulate (batch engine only)")
    check_parser.add_argument("--vectorized", choices=("auto", "always", "never"),
                              default="auto",
                              help="frontier engine: 'auto' batches whole BFS rounds "
                                   "through the numpy kernels when signatures fit 64 "
                                   "bits (falling back to scalar otherwise), 'always' "
                                   "errors instead of falling back, 'never' forces "
                                   "the scalar path; verdicts are identical either way")
    check_parser.add_argument("--no-telemetry", action="store_true",
                              help="skip the metrics/span sidecar (telemetry.jsonl) "
                                   "when writing to --store")
    check_parser.add_argument("--store", default=None,
                              help="write the verdict + counterexample traces into "
                                   "this result store (resumable)")
    check_parser.add_argument("--name", default="check", help="campaign name in the store")
    check_parser.add_argument("--no-resume", action="store_true",
                              help="re-verify even if the run is already stored")
    check_parser.add_argument("--max-traced", type=int, default=10,
                              help="counterexamples reconstructed into full traces")
    check_parser.add_argument("--json", action="store_true",
                              help="print the verdict record as JSON")
    check_parser.set_defaults(handler=cmd_check)

    worst_parser = subparsers.add_parser("worst-case", help="Θ(n_b²) worst-case sweep")
    worst_parser.add_argument("--max-bad", type=int, default=12)
    worst_parser.set_defaults(handler=cmd_worst_case)

    game_parser = subparsers.add_parser("game", help="FR/PR strategy game analysis")
    game_parser.add_argument("--topology", choices=TOPOLOGIES, default="chain")
    game_parser.add_argument("--nodes", type=int, default=5)
    game_parser.add_argument("--max-players", type=int, default=12)
    game_parser.set_defaults(handler=cmd_game)

    simulate_parser = subparsers.add_parser(
        "simulate", help="asynchronous message-passing simulation"
    )
    simulate_parser.add_argument("--topology", choices=TOPOLOGIES, default="grid")
    simulate_parser.add_argument("--nodes", type=int, default=16)
    simulate_parser.add_argument("--mode", choices=("partial", "full"), default="partial")
    simulate_parser.add_argument("--loss", type=float, default=0.0)
    simulate_parser.add_argument(
        "--failures", type=int, default=0, help="inject this many random link failures"
    )
    simulate_parser.add_argument("--delay-model", choices=sorted(DELAY_MODELS),
                                 default="uniform",
                                 help="channel delay model (zero/fixed/uniform/fifo)")
    simulate_parser.add_argument("--engine", choices=("fast", ENGINE_LEGACY),
                                 default="fast",
                                 help="compiled network engine (fast) or the "
                                      "object-level oracle (legacy); both produce "
                                      "identical reports")
    simulate_parser.set_defaults(handler=cmd_simulate)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a sharded experiment campaign into a result store"
    )
    sweep_parser.add_argument("--name", default="sweep", help="campaign name")
    sweep_parser.add_argument("--families", default="chain,random-dag",
                              help="comma-separated topology families")
    sweep_parser.add_argument("--algorithms", default="pr,fr",
                              help=f"comma-separated algorithms ({','.join(sorted(ALGORITHMS))})")
    sweep_parser.add_argument("--schedulers", default="greedy",
                              help=f"comma-separated schedulers ({','.join(sorted(SCHEDULERS))})")
    sweep_parser.add_argument("--sizes", default="5,10,20",
                              help="comma-separated instance sizes")
    sweep_parser.add_argument("--replicates", type=int, default=1,
                              help="seed replicates per cross-product cell")
    sweep_parser.add_argument("--failure-model", choices=FAILURE_MODELS, default="none")
    sweep_parser.add_argument("--failure-count", type=int, default=0,
                              help="failures / mobility steps per run")
    sweep_parser.add_argument("--delay-models", default="",
                              help="comma-separated channel delay models "
                                   f"({','.join(sorted(DELAY_MODELS))}, or 'none' for "
                                   "synchronous cells); setting one routes the cells "
                                   "to the async message-passing engine")
    sweep_parser.add_argument("--losses", default="",
                              help="comma-separated channel loss probabilities "
                                   "for the async cells (default 0)")
    sweep_parser.add_argument("--traffics", default="",
                              help="comma-separated traffic models "
                                   "(trickle/steady/heavy/bursty, or 'none'); "
                                   "cells with traffic run on the packet-level "
                                   "data-plane engine")
    sweep_parser.add_argument("--node-faults", default="",
                              help="comma-separated crash-stop node counts per run "
                                   "(e.g. '0,2'); faulted cells run on the kernel "
                                   "or async engines")
    sweep_parser.add_argument("--max-steps", type=int, default=None,
                              help="per-run step bound")
    sweep_parser.add_argument("--engine", choices=ENGINE_CHOICES, default="auto",
                              help="execution engine for every run: auto picks the "
                                   "compiled kernel fast path whenever the algorithm "
                                   "has one; batch runs whole chunks of kernel-"
                                   "eligible cells in lockstep (fastest at high "
                                   "replicate counts); legacy forces the object-"
                                   "path oracle")
    sweep_parser.add_argument("--store", required=True,
                              help="result store directory (created if missing)")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = inline, no pool)")
    sweep_parser.add_argument("--chunk-size", type=int, default=None,
                              help="runs per dispatched chunk")
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              help="per-run wall-clock budget in seconds")
    sweep_parser.add_argument("--no-resume", action="store_true",
                              help="re-execute runs already present in the store")
    sweep_parser.add_argument("--quiet", action="store_true",
                              help="suppress progress lines on stderr")
    sweep_parser.add_argument("--no-telemetry", action="store_true",
                              help="skip the metrics/span sidecar (telemetry.jsonl) "
                                   "and per-chunk instrumentation")
    sweep_parser.add_argument("--json", action="store_true",
                              help="print the campaign report as JSON")
    chaos = sweep_parser.add_argument_group(
        "chaos", "seeded worker fault injection (needs --workers >= 2); "
                 "every fault is recovered by the self-healing executor, so a "
                 "chaos sweep must produce the same records as a clean one")
    chaos.add_argument("--chaos-crash", type=float, default=0.0,
                       help="per-chunk probability of a worker hard-exit")
    chaos.add_argument("--chaos-hang", type=float, default=0.0,
                       help="per-chunk probability of a worker hang "
                            "(recovered by the watchdog)")
    chaos.add_argument("--chaos-slow", type=float, default=0.0,
                       help="per-chunk probability of an injected stall")
    chaos.add_argument("--chaos-corrupt", type=float, default=0.0,
                       help="per-chunk probability of corrupted worker results "
                            "(detected and re-executed)")
    chaos.add_argument("--chaos-seed", type=int, default=None,
                       help="fault-plan seed (default: --seed)")
    chaos.add_argument("--chaos-strikes", type=int, default=1,
                       help="attempts per chunk that may fault (default 1: "
                            "every fault recovers on first retry)")
    sweep_parser.add_argument("--watchdog", type=float, default=None,
                              help="heartbeat watchdog: kill and re-dispatch worker "
                                   "chunks silent for this many seconds")
    sweep_parser.add_argument("--max-retries", type=int, default=3,
                              help="re-dispatch budget per chunk before its runs "
                                   "are recorded as crashed")
    sweep_parser.set_defaults(handler=cmd_sweep)

    report_parser = subparsers.add_parser(
        "report", help="aggregate a result store into summary tables"
    )
    report_parser.add_argument("--store", required=True, help="result store directory")
    report_parser.add_argument("--by", default="family,algorithm",
                               help="comma-separated record fields to group by")
    report_parser.add_argument("--metric", default="node_steps",
                               help="record field to summarise")
    report_parser.add_argument("--consolidate", action="store_true",
                               help="rebuild the SQLite index from the JSONL shards first")
    report_parser.add_argument("--json", action="store_true",
                               help="print the full report as JSON")
    report_parser.set_defaults(handler=cmd_report)

    trace_parser = subparsers.add_parser(
        "trace", help="summarise a store's telemetry.jsonl sidecar"
    )
    trace_parser.add_argument("store", help="result store directory swept with telemetry")
    trace_parser.add_argument("--top", type=int, default=10,
                              help="span groups to show, by total duration")
    trace_parser.add_argument("--json", action="store_true",
                              help="print the summary (and nesting check) as JSON")
    trace_parser.set_defaults(handler=cmd_trace)

    fsck_parser = subparsers.add_parser(
        "fsck", help="verify and repair a result store's integrity"
    )
    fsck_parser.add_argument("store", help="result store directory to check")
    fsck_parser.add_argument("--no-repair", action="store_true",
                             help="report problems only: keep bad lines in place "
                                  "and leave the SQLite index untouched "
                                  "(exit 1 if any are found)")
    fsck_parser.add_argument("--max-shown", type=int, default=10,
                             help="bad lines to list individually")
    fsck_parser.add_argument("--json", action="store_true",
                             help="print the integrity report as JSON")
    fsck_parser.set_defaults(handler=cmd_fsck)

    return parser


def _configure_logging(verbosity: int) -> None:
    """Point the library's loggers at stderr at the requested level.

    Only the CLI entry point configures logging — library modules create
    plain ``logging.getLogger(__name__)`` loggers and never touch handlers,
    so embedding :mod:`repro` in another application keeps full control.
    """
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root = logging.getLogger("repro")
    root.handlers[:] = [handler]
    root.setLevel(level)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
