"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the workflows a user typically wants without writing code:

``run``
    Run one link-reversal algorithm on a generated topology and print the
    work summary (optionally the final orientation as DOT).
``compare``
    Run PR, OneStepPR, NewPR and FR on the same topology and print a
    comparison table.
``verify``
    Exhaustively model-check the paper's invariants and the acyclicity
    theorems over every connected DAG with up to N nodes.
``worst-case``
    Print the Θ(n_b²) worst-case sweep for FR and PR with a quadratic fit.
``game``
    Enumerate the restricted FR/PR strategy game on a small topology.
``simulate``
    Run the asynchronous message-passing protocol, optionally injecting
    random link failures, and print the network report.

Every command accepts ``--seed`` so runs are reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.game_theory import (
    analyse_game,
    full_reversal_profile,
    partial_reversal_profile,
)
from repro.analysis.statistics import quadratic_fit_r2
from repro.analysis.work import compare_algorithms, count_reversals, worst_case_sweep
from repro.core.full_reversal import FullReversal
from repro.core.graph import LinkReversalInstance
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.distributed.network import AsyncLinkReversalNetwork
from repro.distributed.protocol import ReversalMode
from repro.exploration.enumerate_graphs import all_connected_dag_instances
from repro.exploration.state_space import explore_and_check
from repro.io.dot import orientation_to_dot
from repro.routing.maintenance import RouteMaintenanceSimulation
from repro.schedulers.adversarial import AdversarialScheduler, LazyScheduler
from repro.schedulers.base import RoundRobinScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.topology.generators import (
    chain_instance,
    grid_instance,
    layered_instance,
    random_dag_instance,
    star_instance,
    tree_instance,
    worst_case_chain_instance,
)
from repro.topology.manet import random_geometric_instance
from repro.verification.acyclicity import is_acyclic
from repro.verification.invariants import newpr_invariant_checks, pr_invariant_checks


ALGORITHMS: Dict[str, Callable[[LinkReversalInstance], object]] = {
    "pr": PartialReversal,
    "onestep-pr": OneStepPartialReversal,
    "new-pr": NewPartialReversal,
    "fr": FullReversal,
}

SCHEDULERS: Dict[str, Callable[[int], object]] = {
    "greedy": lambda seed: GreedyScheduler(seed=seed),
    "sequential": lambda seed: SequentialScheduler(seed=seed),
    "random": lambda seed: RandomScheduler(seed=seed),
    "adversarial": lambda seed: AdversarialScheduler(seed=seed),
    "lazy": lambda seed: LazyScheduler(seed=seed),
    "round-robin": lambda seed: RoundRobinScheduler(),
}


def build_topology(name: str, size: int, seed: int) -> LinkReversalInstance:
    """Build one of the named topology families at the requested size."""
    if name == "chain":
        return worst_case_chain_instance(max(1, size - 1))
    if name == "oriented-chain":
        return chain_instance(size, towards_destination=True)
    if name == "star":
        return star_instance(max(1, size - 1), destination_is_center=True)
    if name == "tree":
        return tree_instance(size, seed=seed)
    if name == "grid":
        side = max(2, int(round(size ** 0.5)))
        return grid_instance(side, side, oriented_towards_destination=False)
    if name == "layered":
        width = max(1, size // 4)
        return layered_instance(4, width, seed=seed)
    if name == "random-dag":
        return random_dag_instance(size, edge_probability=min(0.5, 6.0 / size), seed=seed)
    if name == "geometric":
        instance, _ = random_geometric_instance(size, radius=0.4, seed=seed)
        return instance
    raise ValueError(f"unknown topology {name!r}")


TOPOLOGIES = (
    "chain",
    "oriented-chain",
    "star",
    "tree",
    "grid",
    "layered",
    "random-dag",
    "geometric",
)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    instance = build_topology(args.topology, args.nodes, args.seed)
    automaton = ALGORITHMS[args.algorithm](instance)
    scheduler = SCHEDULERS[args.scheduler](args.seed)
    summary = count_reversals(automaton, scheduler, max_steps=args.max_steps)
    print(f"topology      : {args.topology} ({instance.node_count} nodes, "
          f"{instance.edge_count} edges, {len(instance.bad_nodes())} bad)")
    print(f"algorithm     : {summary.algorithm}")
    print(f"scheduler     : {summary.scheduler}")
    print(f"node steps    : {summary.node_steps}")
    print(f"edge reversals: {summary.edge_reversals}")
    print(f"dummy steps   : {summary.dummy_steps}")
    print(f"converged     : {summary.converged}")
    print(f"dest oriented : {summary.destination_oriented}")
    if args.dot:
        from repro.automata.executions import run as run_execution

        result = run_execution(
            ALGORITHMS[args.algorithm](instance), SCHEDULERS[args.scheduler](args.seed)
        )
        orientation = getattr(result.final_state, "orientation", None)
        if orientation is None:
            orientation = result.final_state.to_orientation()
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(orientation_to_dot(orientation))
        print(f"final orientation written to {args.dot}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    instance = build_topology(args.topology, args.nodes, args.seed)
    results = compare_algorithms(instance, lambda: SCHEDULERS[args.scheduler](args.seed))
    print(f"{'algorithm':<12} {'steps':>8} {'reversals':>10} {'dummy':>6} {'oriented':>9}")
    for name, summary in results.items():
        print(f"{name:<12} {summary.node_steps:>8} {summary.edge_reversals:>10} "
              f"{summary.dummy_steps:>6} {str(summary.destination_oriented):>9}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    total_failures = 0
    graphs = 0
    states = 0
    for size in range(2, args.max_nodes + 1):
        for instance in all_connected_dag_instances(size):
            graphs += 1
            for automaton_class, predicates in (
                (PartialReversal, pr_invariant_checks()),
                (NewPartialReversal, newpr_invariant_checks()),
                (FullReversal, {"acyclic": is_acyclic}),
            ):
                report = explore_and_check(automaton_class(instance), dict(predicates))
                states += report.states_explored
                total_failures += len(report.failures)
    print(f"checked {graphs} graphs, {states} automaton states")
    print(f"violations: {total_failures}")
    if total_failures == 0:
        print("all invariants and acyclicity claims hold on every reachable state")
    return 0 if total_failures == 0 else 1


def cmd_worst_case(args: argparse.Namespace) -> int:
    sizes = range(1, args.max_bad + 1)
    fr_series = worst_case_sweep(sizes, FullReversal, GreedyScheduler)
    pr_series = worst_case_sweep(sizes, OneStepPartialReversal, GreedyScheduler)
    print(f"{'n_bad':>6} {'FR steps':>10} {'PR steps':>10}")
    for (n_bad, fr_steps), (_, pr_steps) in zip(fr_series, pr_series):
        print(f"{n_bad:>6} {fr_steps:>10} {pr_steps:>10}")
    if len(fr_series) >= 4:
        xs = [float(n) for n, _ in fr_series]
        ys = [float(s) for _, s in fr_series]
        coefficients, r2 = quadratic_fit_r2(xs, ys)
        print(f"FR quadratic fit: {coefficients[0]:.3f}x² + {coefficients[1]:.3f}x "
              f"+ {coefficients[2]:.3f}  (R²={r2:.5f})")
    return 0


def cmd_game(args: argparse.Namespace) -> int:
    instance = build_topology(args.topology, args.nodes, args.seed)
    players = len(instance.non_destination_nodes)
    if players > args.max_players:
        print(f"error: topology has {players} players; the game enumerates 2^players "
              f"profiles, refusing above --max-players={args.max_players}", file=sys.stderr)
        return 2
    analysis = analyse_game(instance)
    fr_profile = full_reversal_profile(instance)
    pr_profile = partial_reversal_profile(instance)
    print(f"players              : {players}")
    print(f"profiles             : {2 ** players}")
    print(f"all-FR social cost   : {analysis.cost_of(fr_profile)} "
          f"(equilibrium: {fr_profile in analysis.equilibria})")
    print(f"all-PR social cost   : {analysis.cost_of(pr_profile)} "
          f"(equilibrium: {pr_profile in analysis.equilibria})")
    print(f"global optimum       : {analysis.optimum_cost}")
    print(f"equilibria           : {len(analysis.equilibria)} "
          f"with costs {list(analysis.equilibrium_costs())}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    instance = build_topology(args.topology, args.nodes, args.seed)
    mode = ReversalMode.PARTIAL if args.mode == "partial" else ReversalMode.FULL
    if args.failures > 0:
        simulation = RouteMaintenanceSimulation(
            instance, mode=mode, loss_probability=args.loss, seed=args.seed
        )
        results = simulation.fail_random_links(args.failures)
        for result in results:
            print(f"  {result}")
        summary = simulation.summary()
        print("summary:")
        for key, value in summary.items():
            print(f"  {key}: {value:.2f}" if isinstance(value, float) else f"  {key}: {value}")
        return 0
    network = AsyncLinkReversalNetwork(
        instance, mode=mode, loss_probability=args.loss, seed=args.seed
    )
    report = network.run_to_quiescence()
    print(report)
    return 0 if report.destination_oriented else 1


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Link reversal algorithms (Partial Reversal Acyclicity reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one algorithm on a topology")
    run_parser.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="pr")
    run_parser.add_argument("--topology", choices=TOPOLOGIES, default="chain")
    run_parser.add_argument("--nodes", type=int, default=20)
    run_parser.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="greedy")
    run_parser.add_argument("--max-steps", type=int, default=None)
    run_parser.add_argument("--dot", help="write the final orientation to this DOT file")
    run_parser.set_defaults(handler=cmd_run)

    compare_parser = subparsers.add_parser("compare", help="compare all algorithms")
    compare_parser.add_argument("--topology", choices=TOPOLOGIES, default="chain")
    compare_parser.add_argument("--nodes", type=int, default=20)
    compare_parser.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="greedy")
    compare_parser.set_defaults(handler=cmd_compare)

    verify_parser = subparsers.add_parser(
        "verify", help="exhaustively model-check the paper's invariants"
    )
    verify_parser.add_argument("--max-nodes", type=int, default=4)
    verify_parser.set_defaults(handler=cmd_verify)

    worst_parser = subparsers.add_parser("worst-case", help="Θ(n_b²) worst-case sweep")
    worst_parser.add_argument("--max-bad", type=int, default=12)
    worst_parser.set_defaults(handler=cmd_worst_case)

    game_parser = subparsers.add_parser("game", help="FR/PR strategy game analysis")
    game_parser.add_argument("--topology", choices=TOPOLOGIES, default="chain")
    game_parser.add_argument("--nodes", type=int, default=5)
    game_parser.add_argument("--max-players", type=int, default=12)
    game_parser.set_defaults(handler=cmd_game)

    simulate_parser = subparsers.add_parser(
        "simulate", help="asynchronous message-passing simulation"
    )
    simulate_parser.add_argument("--topology", choices=TOPOLOGIES, default="grid")
    simulate_parser.add_argument("--nodes", type=int, default=16)
    simulate_parser.add_argument("--mode", choices=("partial", "full"), default="partial")
    simulate_parser.add_argument("--loss", type=float, default=0.0)
    simulate_parser.add_argument(
        "--failures", type=int, default=0, help="inject this many random link failures"
    )
    simulate_parser.set_defaults(handler=cmd_simulate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
