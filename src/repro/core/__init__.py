"""Core link-reversal algorithms and the graph substrate they operate on.

Modules
-------

``graph``
    The system model of Section 2 of the paper: an undirected graph with a
    single destination, a fixed initial orientation (``G'_init``), and the
    mutable :class:`~repro.core.graph.Orientation` that the algorithms evolve.
``embedding``
    The left-to-right planar embedding used by the acyclicity proof
    (Invariants 4.1 / 4.2).
``base``
    Shared machinery for link-reversal automata.
``pr`` / ``one_step_pr`` / ``new_pr`` / ``full_reversal``
    Algorithms 1-3 of the paper plus the Full Reversal baseline.
``bll`` / ``heights``
    The earlier proof routes the paper discusses: Binary Link Labels
    (Welch & Walter) and Gafni-Bertsekas height labelings.
"""

from repro.core.graph import EdgeDirection, LinkReversalInstance, Orientation
from repro.core.embedding import PlanarEmbedding

__all__ = [
    "EdgeDirection",
    "LinkReversalInstance",
    "Orientation",
    "PlanarEmbedding",
]
