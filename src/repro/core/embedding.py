"""Left-to-right planar embedding of the initial DAG (Section 4.2).

The acyclicity proof of the paper starts from the observation that, because
the input graph ``G'_init`` is a DAG, it can be "embedded in a plane, ensuring
all edges are initially directed from left to right".  Under this embedding,
for every node ``u``, all of ``u``'s initial in-neighbours lie to its *left*
and all of its initial out-neighbours lie to its *right*.

We realise this embedding as a strict total order on the nodes that is
consistent with the initial orientation — i.e. a topological order of
``G'_init`` extended to a total order.  Invariants 4.1 and 4.2 then speak of
edges being directed "from left to right" (from the smaller position to the
larger) or "from right to left".

The embedding is a *proof device*: the algorithms never consult it, only the
verification layer does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Sequence, Tuple

from repro.core.graph import GraphValidationError, LinkReversalInstance, Orientation

Node = Hashable


@dataclass(frozen=True)
class PlanarEmbedding:
    """A left-to-right embedding of the nodes of a link-reversal instance.

    ``position[u] < position[v]`` means ``u`` is drawn to the left of ``v``.
    The embedding is valid for an instance when every initial edge goes from
    a smaller position to a larger one.
    """

    instance: LinkReversalInstance
    positions: Mapping[Node, int] = field(compare=False)

    def __post_init__(self) -> None:
        missing = set(self.instance.nodes) - set(self.positions)
        if missing:
            raise GraphValidationError(f"embedding missing positions for nodes {sorted(map(str, missing))}")
        values = sorted(self.positions[u] for u in self.instance.nodes)
        if values != list(range(len(values))):
            raise GraphValidationError("embedding positions must be a permutation of 0..n-1")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_topological_order(cls, instance: LinkReversalInstance) -> "PlanarEmbedding":
        """Build the canonical embedding from a topological order of ``G'_init``.

        Raises :class:`GraphValidationError` if the initial orientation is not
        acyclic (the paper's system model requires a DAG).
        """
        order = topological_order(instance)
        return cls(instance, {u: i for i, u in enumerate(order)})

    @classmethod
    def from_order(cls, instance: LinkReversalInstance, order: Sequence[Node]) -> "PlanarEmbedding":
        """Build an embedding from an explicit left-to-right node order."""
        return cls(instance, {u: i for i, u in enumerate(order)})

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def position(self, u: Node) -> int:
        """The left-to-right position of ``u`` (0 is leftmost)."""
        return self.positions[u]

    def is_left_of(self, u: Node, v: Node) -> bool:
        """Whether ``u`` is drawn strictly to the left of ``v``."""
        return self.positions[u] < self.positions[v]

    def is_right_of(self, u: Node, v: Node) -> bool:
        """Whether ``u`` is drawn strictly to the right of ``v``."""
        return self.positions[u] > self.positions[v]

    def left_to_right_order(self) -> Tuple[Node, ...]:
        """All nodes sorted from leftmost to rightmost."""
        return tuple(sorted(self.instance.nodes, key=self.positions.__getitem__))

    def rightmost(self, nodes: Sequence[Node]) -> Node:
        """The rightmost node among ``nodes`` (used in the proof of Theorem 4.3)."""
        if not nodes:
            raise ValueError("rightmost() of an empty node sequence")
        return max(nodes, key=self.positions.__getitem__)

    def leftmost(self, nodes: Sequence[Node]) -> Node:
        """The leftmost node among ``nodes``."""
        if not nodes:
            raise ValueError("leftmost() of an empty node sequence")
        return min(nodes, key=self.positions.__getitem__)

    def edge_goes_left_to_right(self, orientation: Orientation, u: Node, v: Node) -> bool:
        """Whether the edge ``{u, v}`` is currently directed from left to right."""
        tail = orientation.tail(u, v)
        head = orientation.head(u, v)
        return self.is_left_of(tail, head)

    def is_consistent_with_initial_orientation(self) -> bool:
        """Whether every initial edge points from a smaller to a larger position.

        This is the defining property of the embedding used in Section 4.2.
        """
        return all(
            self.positions[u] < self.positions[v] for u, v in self.instance.initial_edges
        )

    def validate(self) -> None:
        """Raise if the embedding is not consistent with the initial orientation."""
        if not self.is_consistent_with_initial_orientation():
            offending = [
                (u, v)
                for u, v in self.instance.initial_edges
                if self.positions[u] >= self.positions[v]
            ]
            raise GraphValidationError(
                f"embedding is inconsistent with initial edges {offending!r}"
            )


def topological_order(instance: LinkReversalInstance) -> Tuple[Node, ...]:
    """A deterministic topological order of ``G'_init``.

    Ties are broken by the instance's node declaration order so the embedding
    is reproducible run to run.  Raises :class:`GraphValidationError` if the
    initial orientation contains a cycle.
    """
    rank = {u: i for i, u in enumerate(instance.nodes)}
    indegree: Dict[Node, int] = {u: 0 for u in instance.nodes}
    successors: Dict[Node, list] = {u: [] for u in instance.nodes}
    for u, v in instance.initial_edges:
        indegree[v] += 1
        successors[u].append(v)

    available = sorted((u for u in instance.nodes if indegree[u] == 0), key=rank.__getitem__)
    order: list = []
    while available:
        u = available.pop(0)
        order.append(u)
        newly = []
        for v in successors[u]:
            indegree[v] -= 1
            if indegree[v] == 0:
                newly.append(v)
        if newly:
            available = sorted(available + newly, key=rank.__getitem__)
    if len(order) != len(instance.nodes):
        raise GraphValidationError("initial orientation is not a DAG; no topological order exists")
    return tuple(order)
