"""Gafni–Bertsekas height-based formulations of Full and Partial Reversal.

The original acyclicity proof for Partial Reversal (Gafni & Bertsekas 1981,
recalled in Section 1 of the paper) assigns each node a *height* — a pair for
Full Reversal, a triple for Partial Reversal — and directs every edge from the
lexicographically larger height to the smaller one.  Because the heights form
a total order, the directed graph is trivially acyclic in every state; the
work of the proof is showing the height updates reproduce the reversal
behaviour of the list-based algorithm.

This module implements both height automata:

* **Full Reversal heights** — node ``i`` has height ``(a_i, i)``; when ``i``
  is a sink it sets ``a_i := 1 + max{a_j : j ∈ nbrs(i)}``, which lifts it
  above every neighbour and thus reverses all incident edges.
* **Partial Reversal heights** — node ``i`` has height ``(a_i, b_i, i)``; when
  ``i`` is a sink it sets::

      a_i := 1 + min{a_j : j ∈ nbrs(i)}
      b_i := (min{b_j : j ∈ nbrs(i), a_j = a_i} - 1)   if that set is non-empty,
             b_i                                        otherwise.

  This lifts ``i`` above exactly the neighbours with the old minimum
  ``a``-value and keeps it below the rest — the "partial" reversal.

Heights live in the node state; edge directions are *derived* from the height
order, so acyclicity is structural.  The automata expose the same
``reverse(u)`` interface as the rest of the library so they plug into the same
schedulers, analysis and benchmarks (experiment E14 compares the height-based
PR against the list-based PR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterator, Mapping, Optional, Tuple

from repro.automata.ioa import Action, IOAutomaton, TransitionError
from repro.core.base import Reverse
from repro.core.graph import LinkReversalInstance, Orientation

Node = Hashable


@dataclass(frozen=True, order=True)
class PairHeight:
    """Full Reversal height ``(a, node_rank)``; larger height means edges point away."""

    a: int
    rank: int


@dataclass(frozen=True, order=True)
class TripleHeight:
    """Partial Reversal height ``(a, b, node_rank)``."""

    a: int
    b: int
    rank: int


class HeightState:
    """State of a height-based automaton: one height per node.

    Edge directions are derived: the edge ``{u, v}`` points from the node with
    the larger height to the node with the smaller height, so the orientation
    is acyclic by construction in every reachable state.
    """

    __slots__ = ("instance", "heights", "counts", "_rank")

    def __init__(
        self,
        instance: LinkReversalInstance,
        heights: Mapping[Node, object],
        counts: Optional[Mapping[Node, int]] = None,
    ):
        self.instance = instance
        self.heights: Dict[Node, object] = dict(heights)
        self.counts: Dict[Node, int] = dict(counts) if counts else {u: 0 for u in instance.nodes}
        self._rank = {u: i for i, u in enumerate(instance.nodes)}

    # ------------------------------------------------------------------
    # derived orientation
    # ------------------------------------------------------------------
    def points_towards(self, u: Node, v: Node) -> bool:
        """Whether the edge between ``u`` and ``v`` is directed ``u -> v``."""
        return self.heights[u] > self.heights[v]

    def directed_edges(self) -> Tuple[Tuple[Node, Node], ...]:
        """The current derived directed edge set."""
        result = []
        for u, v in self.instance.initial_edges:
            if self.points_towards(u, v):
                result.append((u, v))
            else:
                result.append((v, u))
        return tuple(result)

    def reversal_mask(self) -> int:
        """The derived orientation as a reversal bitmask over the edge index.

        Bit ``e`` is set iff edge ``e`` currently points against its initial
        direction, i.e. the initial tail's height dropped below the initial
        head's.  This is exactly :meth:`Orientation.signature`, computed
        without materialising an :class:`Orientation`.
        """
        mask = 0
        heights = self.heights
        for e, (u, v) in enumerate(self.instance.initial_edges):
            if heights[u] < heights[v]:
                mask |= 1 << e
        return mask

    def to_orientation(self) -> Orientation:
        """Materialise the derived orientation as an :class:`Orientation`."""
        return Orientation.from_mask(self.instance, self.reversal_mask())

    def is_sink(self, u: Node) -> bool:
        """Whether every incident edge currently points towards ``u``."""
        nbrs = self.instance.nbrs(u)
        if not nbrs:
            return False
        return all(self.heights[v] > self.heights[u] for v in nbrs)

    def sinks(self) -> Tuple[Node, ...]:
        """All non-destination sinks."""
        return tuple(
            u
            for u in self.instance.nodes
            if u != self.instance.destination and self.is_sink(u)
        )

    def is_acyclic(self) -> bool:
        """Always true: the height order is total, so no directed cycle can exist."""
        return True

    def is_destination_oriented(self) -> bool:
        """Whether every node has a directed path to the destination."""
        return self.to_orientation().is_destination_oriented()

    def graph_signature(self) -> int:
        """Fingerprint of the derived orientation (for cross-algorithm comparison)."""
        return self.reversal_mask()

    def copy(self) -> "HeightState":
        return HeightState(self.instance, dict(self.heights), dict(self.counts))

    def signature(self) -> Tuple:
        # heights in instance node order; node identity is positional
        return tuple(self.heights[u] for u in self.instance.nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeightState):
            return NotImplemented
        # the signature is positional (heights in instance node order), so
        # equality is only meaningful over the same problem instance
        return (
            self.instance is other.instance or self.instance == other.instance
        ) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())


class _HeightAutomaton(IOAutomaton):
    """Shared plumbing for the two height-based automata."""

    def __init__(self, instance: LinkReversalInstance, require_dag: bool = True):
        instance.validate(require_dag=require_dag)
        self.instance = instance
        self._rank = {u: i for i, u in enumerate(instance.nodes)}

    def enabled_actions(self, state: HeightState) -> Iterator[Action]:
        for u in state.sinks():
            yield Reverse(u)

    def is_enabled(self, state: HeightState, action: Action) -> bool:
        if not isinstance(action, Reverse):
            return False
        if action.node == self.instance.destination:
            return False
        return state.is_sink(action.node)

    def apply(self, state: HeightState, action: Action) -> HeightState:
        if not self.is_enabled(state, action):
            raise TransitionError(f"{action!r} is not enabled")
        new_state = state.copy()
        self._lift(new_state, action.node)
        new_state.counts[action.node] += 1
        return new_state

    # subclasses implement the height update
    def _lift(self, state: HeightState, u: Node) -> None:
        raise NotImplementedError


class GBFullReversalHeights(_HeightAutomaton):
    """Gafni–Bertsekas Full Reversal via pair heights ``(a_i, i)``."""

    name = "GB-FR-heights"

    def initial_state(self) -> HeightState:
        heights = self._initial_heights()
        return HeightState(self.instance, heights)

    def _initial_heights(self) -> Dict[Node, PairHeight]:
        """Initial pair heights consistent with ``G'_init``.

        We use the longest-path level of each node in the initial DAG (edges
        point from higher to lower level after negation), which directs every
        initial edge from the larger to the smaller height as required.
        """
        from repro.core.embedding import topological_order

        order = topological_order(self.instance)
        level: Dict[Node, int] = {u: 0 for u in self.instance.nodes}
        # longest distance from any source measured along initial edges,
        # then negated so that edge tails get *larger* heights than heads.
        for u in order:
            for v in self.instance.out_nbrs(u):
                level[v] = max(level[v], level[u] + 1)
        max_level = max(level.values(), default=0)
        return {
            u: PairHeight(a=max_level - level[u], rank=self._rank[u])
            for u in self.instance.nodes
        }

    def _lift(self, state: HeightState, u: Node) -> None:
        nbr_heights = [state.heights[v] for v in self.instance.nbrs(u)]
        max_a = max(h.a for h in nbr_heights)
        state.heights[u] = PairHeight(a=max_a + 1, rank=self._rank[u])


class GBPartialReversalHeights(_HeightAutomaton):
    """Gafni–Bertsekas Partial Reversal via triple heights ``(a_i, b_i, i)``."""

    name = "GB-PR-heights"

    def initial_state(self) -> HeightState:
        return HeightState(self.instance, self._initial_heights())

    def _initial_heights(self) -> Dict[Node, TripleHeight]:
        """Initial triple heights consistent with ``G'_init``.

        All nodes start with the same ``a`` value (zero); the ``b`` component
        carries the initial DAG structure (longest-path level, negated) so that
        every initial edge points from the larger to the smaller height.
        """
        from repro.core.embedding import topological_order

        order = topological_order(self.instance)
        level: Dict[Node, int] = {u: 0 for u in self.instance.nodes}
        for u in order:
            for v in self.instance.out_nbrs(u):
                level[v] = max(level[v], level[u] + 1)
        max_level = max(level.values(), default=0)
        return {
            u: TripleHeight(a=0, b=max_level - level[u], rank=self._rank[u])
            for u in self.instance.nodes
        }

    def _lift(self, state: HeightState, u: Node) -> None:
        nbrs = self.instance.nbrs(u)
        nbr_heights = {v: state.heights[v] for v in nbrs}
        min_a = min(h.a for h in nbr_heights.values())
        new_a = min_a + 1
        same_level_bs = [h.b for h in nbr_heights.values() if h.a == new_a]
        old = state.heights[u]
        if same_level_bs:
            new_b = min(same_level_bs) - 1
        else:
            new_b = old.b
        state.heights[u] = TripleHeight(a=new_a, b=new_b, rank=self._rank[u])
