"""System model of the paper (Section 2).

The paper models the system as an undirected graph ``G = (V, E)`` with a
single predetermined destination node ``D``.  A *directed version* ``G'`` of
``G`` assigns exactly one direction to every undirected edge.  A fixed
*initial* directed version ``G'_init`` determines, for every node ``u``, the
constant neighbour sets

* ``nbrs(u)``      — all neighbours of ``u`` in ``G``,
* ``in_nbrs(u)``   — neighbours ``v`` with an edge ``v -> u`` in ``G'_init``,
* ``out_nbrs(u)``  — neighbours ``v`` with an edge ``u -> v`` in ``G'_init``.

These sets never change during an execution; only the current orientation of
the edges changes.  This module provides:

:class:`LinkReversalInstance`
    The immutable problem instance: nodes, undirected edges, destination and
    the initial orientation.
:class:`Orientation`
    A (cheaply copyable) assignment of a direction to every edge — the
    ``dir[u, v]`` state variables of the paper's automata.
:class:`EdgeDirection`
    The two values ``IN`` / ``OUT`` of a ``dir`` variable.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Sequence, Tuple

Node = Hashable
UndirectedEdge = FrozenSet[Node]
DirectedEdge = Tuple[Node, Node]


class EdgeDirection(enum.Enum):
    """Value of a ``dir[u, v]`` state variable, from ``u``'s perspective.

    ``dir[u, v] = IN`` means the edge between ``u`` and ``v`` currently points
    *towards* ``u`` (i.e. the directed edge is ``v -> u``); ``OUT`` means it
    points away from ``u`` (``u -> v``).  Invariant 3.1 of the paper states
    that ``dir[u, v] = IN`` iff ``dir[v, u] = OUT`` — the :class:`Orientation`
    representation below enforces this by construction.
    """

    IN = "in"
    OUT = "out"

    def flipped(self) -> "EdgeDirection":
        """Return the opposite direction."""
        return EdgeDirection.OUT if self is EdgeDirection.IN else EdgeDirection.IN


class GraphValidationError(ValueError):
    """Raised when a problem instance violates the paper's system model."""


def undirected(u: Node, v: Node) -> UndirectedEdge:
    """Return the canonical (unordered) representation of the edge ``{u, v}``."""
    return frozenset((u, v))


@dataclass(frozen=True)
class LinkReversalInstance:
    """An immutable link-reversal problem instance.

    Parameters
    ----------
    nodes:
        All nodes ``V`` of the graph (order is preserved and used as a
        deterministic iteration order throughout the library).
    destination:
        The destination node ``D``; it never takes a step in any algorithm.
    initial_edges:
        The edges of ``G'_init`` as directed pairs ``(u, v)`` meaning
        ``u -> v`` initially.  Each undirected edge must appear exactly once.

    The instance exposes the constant neighbour sets ``nbrs``, ``in_nbrs`` and
    ``out_nbrs`` of the paper, plus convenience accessors used by the
    algorithms, the verification layer and the topology generators.
    """

    nodes: Tuple[Node, ...]
    destination: Node
    initial_edges: Tuple[DirectedEdge, ...]
    _nbrs: Mapping[Node, FrozenSet[Node]] = field(init=False, repr=False, compare=False)
    _in_nbrs: Mapping[Node, FrozenSet[Node]] = field(init=False, repr=False, compare=False)
    _out_nbrs: Mapping[Node, FrozenSet[Node]] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise GraphValidationError("duplicate nodes in instance")
        if self.destination not in node_set:
            raise GraphValidationError(f"destination {self.destination!r} is not a node")

        seen_undirected: set[UndirectedEdge] = set()
        nbrs: Dict[Node, set] = {u: set() for u in self.nodes}
        in_nbrs: Dict[Node, set] = {u: set() for u in self.nodes}
        out_nbrs: Dict[Node, set] = {u: set() for u in self.nodes}
        for u, v in self.initial_edges:
            if u not in node_set or v not in node_set:
                raise GraphValidationError(f"edge ({u!r}, {v!r}) references unknown node")
            if u == v:
                raise GraphValidationError(f"self loop on node {u!r} is not allowed")
            edge = undirected(u, v)
            if edge in seen_undirected:
                raise GraphValidationError(
                    f"edge between {u!r} and {v!r} specified more than once"
                )
            seen_undirected.add(edge)
            nbrs[u].add(v)
            nbrs[v].add(u)
            out_nbrs[u].add(v)
            in_nbrs[v].add(u)

        object.__setattr__(self, "_nbrs", {u: frozenset(s) for u, s in nbrs.items()})
        object.__setattr__(self, "_in_nbrs", {u: frozenset(s) for u, s in in_nbrs.items()})
        object.__setattr__(self, "_out_nbrs", {u: frozenset(s) for u, s in out_nbrs.items()})

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_directed_edges(
        cls,
        nodes: Sequence[Node],
        destination: Node,
        edges: Iterable[DirectedEdge],
    ) -> "LinkReversalInstance":
        """Build an instance from an explicit list of initially directed edges."""
        return cls(tuple(nodes), destination, tuple((u, v) for u, v in edges))

    @classmethod
    def from_networkx(cls, graph, destination: Node) -> "LinkReversalInstance":
        """Build an instance from a ``networkx.DiGraph`` (the initial orientation).

        The node iteration order of the DiGraph is preserved.
        """
        nodes = tuple(graph.nodes())
        edges = tuple(graph.edges())
        return cls(nodes, destination, edges)

    def to_networkx(self):
        """Return the initial orientation ``G'_init`` as a ``networkx.DiGraph``."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.initial_edges)
        return graph

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def non_destination_nodes(self) -> Tuple[Node, ...]:
        """All nodes except the destination (the nodes that may take steps)."""
        return tuple(u for u in self.nodes if u != self.destination)

    @property
    def undirected_edges(self) -> FrozenSet[UndirectedEdge]:
        """The edge set ``E`` of the undirected graph ``G``."""
        return frozenset(undirected(u, v) for u, v in self.initial_edges)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges ``|E|``."""
        return len(self.initial_edges)

    @property
    def node_count(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self.nodes)

    def nbrs(self, u: Node) -> FrozenSet[Node]:
        """Neighbours of ``u`` in the undirected graph ``G`` (constant)."""
        return self._nbrs[u]

    def in_nbrs(self, u: Node) -> FrozenSet[Node]:
        """Nodes with edges directed *towards* ``u`` in ``G'_init`` (constant)."""
        return self._in_nbrs[u]

    def out_nbrs(self, u: Node) -> FrozenSet[Node]:
        """Nodes with edges directed *away from* ``u`` in ``G'_init`` (constant)."""
        return self._out_nbrs[u]

    def degree(self, u: Node) -> int:
        """Degree of ``u`` in the undirected graph."""
        return len(self._nbrs[u])

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether ``{u, v}`` is an edge of ``G``."""
        return v in self._nbrs.get(u, frozenset())

    def iter_edges(self) -> Iterator[DirectedEdge]:
        """Iterate over the initial directed edges in declaration order."""
        return iter(self.initial_edges)

    # ------------------------------------------------------------------
    # initial-orientation structure
    # ------------------------------------------------------------------
    def initial_orientation(self) -> "Orientation":
        """Return the mutable orientation corresponding to ``G'_init``."""
        return Orientation.from_directed_edges(self, self.initial_edges)

    def initial_sinks(self) -> Tuple[Node, ...]:
        """Nodes that are sinks in ``G'_init`` (every incident edge incoming)."""
        return tuple(
            u
            for u in self.nodes
            if self._nbrs[u] and not self._out_nbrs[u]
        )

    def initial_sources(self) -> Tuple[Node, ...]:
        """Nodes that are sources in ``G'_init`` (every incident edge outgoing)."""
        return tuple(
            u
            for u in self.nodes
            if self._nbrs[u] and not self._in_nbrs[u]
        )

    def is_initially_acyclic(self) -> bool:
        """Whether ``G'_init`` is a DAG (a requirement of the system model)."""
        return _is_acyclic_edge_list(self.nodes, self.initial_edges)

    def is_connected(self) -> bool:
        """Whether the undirected graph ``G`` is connected."""
        if not self.nodes:
            return True
        seen = {self.nodes[0]}
        frontier = [self.nodes[0]]
        while frontier:
            u = frontier.pop()
            for v in self._nbrs[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == len(self.nodes)

    def validate(self, require_dag: bool = True, require_connected: bool = False) -> None:
        """Raise :class:`GraphValidationError` if the instance violates the model.

        Parameters
        ----------
        require_dag:
            The paper assumes the initial graph is a DAG.  Set to ``False``
            only for experiments that deliberately start from a non-DAG.
        require_connected:
            Routing experiments typically need a connected graph.
        """
        if require_dag and not self.is_initially_acyclic():
            raise GraphValidationError("initial orientation contains a cycle")
        if require_connected and not self.is_connected():
            raise GraphValidationError("underlying undirected graph is not connected")

    def bad_nodes(self) -> FrozenSet[Node]:
        """Nodes with no directed path to the destination in ``G'_init``.

        This is the set whose cardinality ``n_b`` parameterises the
        Θ(n_b²) worst-case work bound discussed in Section 1 of the paper.
        """
        return self.initial_orientation().nodes_without_path_to_destination()

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def relabelled(self, mapping: Mapping[Node, Node]) -> "LinkReversalInstance":
        """Return a copy of the instance with nodes renamed via ``mapping``."""
        return LinkReversalInstance(
            nodes=tuple(mapping[u] for u in self.nodes),
            destination=mapping[self.destination],
            initial_edges=tuple((mapping[u], mapping[v]) for u, v in self.initial_edges),
        )

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"LinkReversalInstance(|V|={self.node_count}, |E|={self.edge_count}, "
            f"destination={self.destination!r})"
        )


def _is_acyclic_edge_list(nodes: Sequence[Node], edges: Sequence[DirectedEdge]) -> bool:
    """Kahn's algorithm acyclicity check on an explicit edge list."""
    indegree: Dict[Node, int] = {u: 0 for u in nodes}
    successors: Dict[Node, List[Node]] = {u: [] for u in nodes}
    for u, v in edges:
        indegree[v] += 1
        successors[u].append(v)
    queue = [u for u in nodes if indegree[u] == 0]
    removed = 0
    while queue:
        u = queue.pop()
        removed += 1
        for v in successors[u]:
            indegree[v] -= 1
            if indegree[v] == 0:
                queue.append(v)
    return removed == len(nodes)


class Orientation:
    """A directed version ``G'`` of the undirected graph ``G``.

    Internally the orientation stores, for every undirected edge, the *head*
    node the edge currently points to.  This representation makes the paper's
    Invariant 3.1 (``dir[u, v] = in`` iff ``dir[v, u] = out``) true by
    construction, while still exposing the ``dir`` view used by the automata.

    The class is deliberately small and copyable in O(|E|): the model checker
    copies orientations for every explored transition.
    """

    __slots__ = ("instance", "_head")

    def __init__(self, instance: LinkReversalInstance, head: Dict[UndirectedEdge, Node]):
        self.instance = instance
        self._head = head

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_directed_edges(
        cls, instance: LinkReversalInstance, edges: Iterable[DirectedEdge]
    ) -> "Orientation":
        """Build an orientation from explicit directed edges ``u -> v``."""
        head: Dict[UndirectedEdge, Node] = {}
        for u, v in edges:
            edge = undirected(u, v)
            if not instance.has_edge(u, v):
                raise GraphValidationError(f"({u!r}, {v!r}) is not an edge of the instance")
            head[edge] = v
        missing = instance.undirected_edges - set(head)
        if missing:
            raise GraphValidationError(f"orientation missing directions for {sorted(map(tuple, missing))!r}")
        return cls(instance, head)

    def copy(self) -> "Orientation":
        """Return an independent copy of this orientation."""
        return Orientation(self.instance, dict(self._head))

    # ------------------------------------------------------------------
    # the paper's ``dir`` view
    # ------------------------------------------------------------------
    def dir(self, u: Node, v: Node) -> EdgeDirection:
        """The paper's ``dir[u, v]`` variable: direction of ``{u, v}`` from ``u``."""
        head = self._head[undirected(u, v)]
        return EdgeDirection.IN if head == u else EdgeDirection.OUT

    def head(self, u: Node, v: Node) -> Node:
        """The node the edge ``{u, v}`` currently points to."""
        return self._head[undirected(u, v)]

    def tail(self, u: Node, v: Node) -> Node:
        """The node the edge ``{u, v}`` currently points away from."""
        head = self._head[undirected(u, v)]
        return v if head == u else u

    def points_towards(self, u: Node, v: Node) -> bool:
        """Whether the edge between ``u`` and ``v`` is currently directed ``u -> v``."""
        return self._head[undirected(u, v)] == v

    def reverse_edge(self, u: Node, v: Node) -> None:
        """Flip the direction of the edge ``{u, v}`` (in place)."""
        edge = undirected(u, v)
        current = self._head[edge]
        self._head[edge] = u if current == v else v

    def reverse_edges_from(self, u: Node, targets: Iterable[Node]) -> Tuple[Node, ...]:
        """Reverse the edges between ``u`` and each node in ``targets``.

        Only edges currently directed *towards* ``u`` are flipped (matching the
        automata, where a reversing node is a sink so all its edges point at
        it); edges already directed away from ``u`` are left untouched.
        Returns the neighbours whose edge was actually flipped.
        """
        flipped: List[Node] = []
        for v in targets:
            if self._head[undirected(u, v)] == u:
                self._head[undirected(u, v)] = v
                flipped.append(v)
        return tuple(flipped)

    # ------------------------------------------------------------------
    # node-level structure
    # ------------------------------------------------------------------
    def current_in_nbrs(self, u: Node) -> FrozenSet[Node]:
        """Neighbours whose edge currently points towards ``u``."""
        return frozenset(v for v in self.instance.nbrs(u) if self._head[undirected(u, v)] == u)

    def current_out_nbrs(self, u: Node) -> FrozenSet[Node]:
        """Neighbours whose edge currently points away from ``u``."""
        return frozenset(v for v in self.instance.nbrs(u) if self._head[undirected(u, v)] == v)

    def is_sink(self, u: Node) -> bool:
        """Whether ``u`` is a sink: it has neighbours and every incident edge is incoming.

        The destination is never considered a sink for scheduling purposes by
        the automata (it never takes steps), but this predicate is purely
        structural and applies to any node.
        """
        nbrs = self.instance.nbrs(u)
        if not nbrs:
            return False
        return all(self._head[undirected(u, v)] == u for v in nbrs)

    def is_source(self, u: Node) -> bool:
        """Whether ``u`` has neighbours and every incident edge is outgoing."""
        nbrs = self.instance.nbrs(u)
        if not nbrs:
            return False
        return all(self._head[undirected(u, v)] == v for v in nbrs)

    def sinks(self, exclude_destination: bool = True) -> Tuple[Node, ...]:
        """All sink nodes, optionally excluding the destination."""
        result = []
        for u in self.instance.nodes:
            if exclude_destination and u == self.instance.destination:
                continue
            if self.is_sink(u):
                result.append(u)
        return tuple(result)

    # ------------------------------------------------------------------
    # whole-graph structure
    # ------------------------------------------------------------------
    def directed_edges(self) -> Tuple[DirectedEdge, ...]:
        """All edges as directed pairs ``(tail, head)`` in instance edge order."""
        result = []
        for u, v in self.instance.initial_edges:
            head = self._head[undirected(u, v)]
            tail = u if head == v else v
            result.append((tail, head))
        return tuple(result)

    def to_networkx(self):
        """Return the current directed graph ``G'`` as a ``networkx.DiGraph``."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.instance.nodes)
        graph.add_edges_from(self.directed_edges())
        return graph

    def is_acyclic(self) -> bool:
        """Whether the current directed graph is a DAG."""
        return _is_acyclic_edge_list(self.instance.nodes, self.directed_edges())

    def find_cycle(self) -> Tuple[Node, ...]:
        """Return a directed cycle as a node tuple, or ``()`` if none exists.

        Used by the verification layer to produce counterexample traces.
        """
        successors: Dict[Node, List[Node]] = {u: [] for u in self.instance.nodes}
        for tail, head in self.directed_edges():
            successors[tail].append(head)

        WHITE, GREY, BLACK = 0, 1, 2
        colour = {u: WHITE for u in self.instance.nodes}
        parent: Dict[Node, Node] = {}

        for root in self.instance.nodes:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[Node, Iterator[Node]]] = [(root, iter(successors[root]))]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(successors[nxt])))
                        advanced = True
                        break
                    if colour[nxt] == GREY:
                        cycle = [nxt, node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return tuple(cycle[:-1])
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return ()

    def nodes_with_path_to_destination(self) -> FrozenSet[Node]:
        """Nodes that currently have a directed path to the destination."""
        destination = self.instance.destination
        predecessors: Dict[Node, List[Node]] = {u: [] for u in self.instance.nodes}
        for tail, head in self.directed_edges():
            predecessors[head].append(tail)
        reached = {destination}
        frontier = [destination]
        while frontier:
            u = frontier.pop()
            for v in predecessors[u]:
                if v not in reached:
                    reached.add(v)
                    frontier.append(v)
        return frozenset(reached)

    def nodes_without_path_to_destination(self) -> FrozenSet[Node]:
        """Nodes with no directed path to the destination (the "bad" nodes)."""
        return frozenset(self.instance.nodes) - self.nodes_with_path_to_destination()

    def is_destination_oriented(self) -> bool:
        """Whether every node has a directed path to the destination.

        This is the goal condition of link-reversal routing: the graph is
        *destination oriented* when the only sink is the destination and every
        node can reach it.
        """
        return len(self.nodes_with_path_to_destination()) == len(self.instance.nodes)

    def shortest_path_to_destination(self, u: Node) -> Tuple[Node, ...]:
        """A shortest directed path from ``u`` to the destination, or ``()``.

        Breadth-first search over the current orientation; used by the routing
        layer to extract routes and measure stretch.
        """
        destination = self.instance.destination
        if u == destination:
            return (u,)
        successors: Dict[Node, List[Node]] = {w: [] for w in self.instance.nodes}
        for tail, head in self.directed_edges():
            successors[tail].append(head)
        parent: Dict[Node, Node] = {}
        frontier = [u]
        seen = {u}
        while frontier:
            next_frontier: List[Node] = []
            for w in frontier:
                for x in successors[w]:
                    if x in seen:
                        continue
                    parent[x] = w
                    if x == destination:
                        path = [x]
                        while path[-1] != u:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return tuple(path)
                    seen.add(x)
                    next_frontier.append(x)
            frontier = next_frontier
        return ()

    # ------------------------------------------------------------------
    # hashing / equality (used by the model checker)
    # ------------------------------------------------------------------
    def signature(self) -> Tuple[DirectedEdge, ...]:
        """A canonical, hashable fingerprint of this orientation."""
        return self.directed_edges()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Orientation):
            return NotImplemented
        return self.instance is other.instance and self._head == other._head or (
            self.instance.undirected_edges == other.instance.undirected_edges
            and self._head == other._head
        )

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        edges = ", ".join(f"{t}->{h}" for t, h in self.directed_edges())
        return f"Orientation({edges})"


def all_orientations(instance: LinkReversalInstance) -> Iterator[Orientation]:
    """Yield every possible orientation of the instance's undirected edges.

    Exponential in ``|E|``; intended for exhaustive testing on tiny graphs.
    """
    edges = list(instance.undirected_edges)
    pairs = [tuple(edge) for edge in edges]
    for choice in itertools.product((0, 1), repeat=len(pairs)):
        directed = [
            (pair[0], pair[1]) if bit == 0 else (pair[1], pair[0])
            for pair, bit in zip(pairs, choice)
        ]
        yield Orientation.from_directed_edges(instance, directed)
