"""System model of the paper (Section 2).

The paper models the system as an undirected graph ``G = (V, E)`` with a
single predetermined destination node ``D``.  A *directed version* ``G'`` of
``G`` assigns exactly one direction to every undirected edge.  A fixed
*initial* directed version ``G'_init`` determines, for every node ``u``, the
constant neighbour sets

* ``nbrs(u)``      — all neighbours of ``u`` in ``G``,
* ``in_nbrs(u)``   — neighbours ``v`` with an edge ``v -> u`` in ``G'_init``,
* ``out_nbrs(u)``  — neighbours ``v`` with an edge ``u -> v`` in ``G'_init``.

These sets never change during an execution; only the current orientation of
the edges changes.  This module provides:

:class:`LinkReversalInstance`
    The immutable problem instance: nodes, undirected edges, destination and
    the initial orientation.
:class:`Orientation`
    A (cheaply copyable) assignment of a direction to every edge — the
    ``dir[u, v]`` state variables of the paper's automata.
:class:`EdgeDirection`
    The two values ``IN`` / ``OUT`` of a ``dir`` variable.

Indexed representation
----------------------

The instance assigns every node and every undirected edge a dense integer
index in :meth:`LinkReversalInstance.__post_init__` and precomputes, once:

* a node ↔ index map and an ordered-pair edge index (``edge_index(u, v)``),
* CSR-style per-node incident-edge index lists (``incident_edge_ids`` /
  ``incident_neighbours``), and
* per-node selector bitmasks over the global edge index.

:class:`Orientation` stores the whole directed version as a *single Python
int bitmask* (bit ``e`` set iff edge ``e`` is currently reversed relative to
``G'_init``) plus per-node incoming-edge counters and an incrementally
maintained sink set.  ``dir`` / ``reverse_edge`` are O(1), ``sinks()`` needs
no rescan, ``copy()`` copies one int and one counter array, and
``signature()`` is the bitmask itself — a compact int the model checker can
dedup on directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

Node = Hashable
UndirectedEdge = FrozenSet[Node]
DirectedEdge = Tuple[Node, Node]


class EdgeDirection(enum.Enum):
    """Value of a ``dir[u, v]`` state variable, from ``u``'s perspective.

    ``dir[u, v] = IN`` means the edge between ``u`` and ``v`` currently points
    *towards* ``u`` (i.e. the directed edge is ``v -> u``); ``OUT`` means it
    points away from ``u`` (``u -> v``).  Invariant 3.1 of the paper states
    that ``dir[u, v] = IN`` iff ``dir[v, u] = OUT`` — the :class:`Orientation`
    representation below enforces this by construction.
    """

    IN = "in"
    OUT = "out"

    def flipped(self) -> "EdgeDirection":
        """Return the opposite direction."""
        return EdgeDirection.OUT if self is EdgeDirection.IN else EdgeDirection.IN


class GraphValidationError(ValueError):
    """Raised when a problem instance violates the paper's system model."""


def undirected(u: Node, v: Node) -> UndirectedEdge:
    """Return the canonical (unordered) representation of the edge ``{u, v}``."""
    return frozenset((u, v))


@dataclass(frozen=True)
class LinkReversalInstance:
    """An immutable link-reversal problem instance.

    Parameters
    ----------
    nodes:
        All nodes ``V`` of the graph (order is preserved and used as a
        deterministic iteration order throughout the library).
    destination:
        The destination node ``D``; it never takes a step in any algorithm.
    initial_edges:
        The edges of ``G'_init`` as directed pairs ``(u, v)`` meaning
        ``u -> v`` initially.  Each undirected edge must appear exactly once.

    The instance exposes the constant neighbour sets ``nbrs``, ``in_nbrs`` and
    ``out_nbrs`` of the paper, plus convenience accessors used by the
    algorithms, the verification layer and the topology generators.
    """

    nodes: Tuple[Node, ...]
    destination: Node
    initial_edges: Tuple[DirectedEdge, ...]
    _nbrs: Mapping[Node, FrozenSet[Node]] = field(init=False, repr=False, compare=False)
    _in_nbrs: Mapping[Node, FrozenSet[Node]] = field(init=False, repr=False, compare=False)
    _out_nbrs: Mapping[Node, FrozenSet[Node]] = field(init=False, repr=False, compare=False)
    # indexed core (see module docstring); every field below is derived once
    _node_id: Mapping[Node, int] = field(init=False, repr=False, compare=False)
    _edge_id: Mapping[Tuple[Node, Node], int] = field(init=False, repr=False, compare=False)
    _edge_node_ids: Tuple[Tuple[int, int], ...] = field(init=False, repr=False, compare=False)
    _incident_eids: Tuple[Tuple[int, ...], ...] = field(init=False, repr=False, compare=False)
    _incident_nbrs: Tuple[Tuple[Node, ...], ...] = field(init=False, repr=False, compare=False)
    _incident_mask: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    _tail_sel: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    _degree: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    _csr_offsets: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    _nbr_pos: Optional[Tuple[Mapping[Node, int], ...]] = field(init=False, repr=False, compare=False)
    _init_in_count: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    _init_sink_ids: FrozenSet[int] = field(init=False, repr=False, compare=False)
    _dest_id: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        node_id: Dict[Node, int] = {u: i for i, u in enumerate(self.nodes)}
        if len(node_id) != len(self.nodes):
            raise GraphValidationError("duplicate nodes in instance")
        if self.destination not in node_id:
            raise GraphValidationError(f"destination {self.destination!r} is not a node")

        n = len(self.nodes)
        edge_id: Dict[Tuple[Node, Node], int] = {}
        edge_node_ids: List[Tuple[int, int]] = []
        inc_eids: List[List[int]] = [[] for _ in range(n)]
        inc_nbrs: List[List[Node]] = [[] for _ in range(n)]
        in_lists: List[List[Node]] = [[] for _ in range(n)]
        out_lists: List[List[Node]] = [[] for _ in range(n)]
        inc_mask = [0] * n
        tail_sel = [0] * n
        in_count = [0] * n
        for e, (u, v) in enumerate(self.initial_edges):
            try:
                ui, vi = node_id[u], node_id[v]
            except KeyError:
                raise GraphValidationError(
                    f"edge ({u!r}, {v!r}) references unknown node"
                ) from None
            if u == v:
                raise GraphValidationError(f"self loop on node {u!r} is not allowed")
            if (u, v) in edge_id:
                raise GraphValidationError(
                    f"edge between {u!r} and {v!r} specified more than once"
                )
            edge_id[(u, v)] = e
            edge_id[(v, u)] = e
            edge_node_ids.append((ui, vi))
            bit = 1 << e
            inc_eids[ui].append(e)
            inc_nbrs[ui].append(v)
            inc_eids[vi].append(e)
            inc_nbrs[vi].append(u)
            inc_mask[ui] |= bit
            inc_mask[vi] |= bit
            tail_sel[ui] |= bit
            in_count[vi] += 1
            out_lists[ui].append(v)
            in_lists[vi].append(u)

        degree = [len(eids) for eids in inc_eids]
        offsets = [0] * n
        running = 0
        for i in range(n):
            offsets[i] = running
            running += degree[i]
        init_sinks = frozenset(
            i for i in range(n) if degree[i] and in_count[i] == degree[i]
        )

        set_attr = object.__setattr__
        set_attr(self, "_nbrs", {u: frozenset(inc_nbrs[i]) for i, u in enumerate(self.nodes)})
        set_attr(self, "_in_nbrs", {u: frozenset(in_lists[i]) for i, u in enumerate(self.nodes)})
        set_attr(self, "_out_nbrs", {u: frozenset(out_lists[i]) for i, u in enumerate(self.nodes)})
        set_attr(self, "_node_id", node_id)
        set_attr(self, "_edge_id", edge_id)
        set_attr(self, "_edge_node_ids", tuple(edge_node_ids))
        set_attr(self, "_incident_eids", tuple(map(tuple, inc_eids)))
        set_attr(self, "_incident_nbrs", tuple(map(tuple, inc_nbrs)))
        set_attr(self, "_incident_mask", tuple(inc_mask))
        set_attr(self, "_tail_sel", tuple(tail_sel))
        set_attr(self, "_degree", tuple(degree))
        set_attr(self, "_csr_offsets", tuple(offsets))
        # neighbour-position maps (for pack_neighbour_sets) are built lazily:
        # most instances never pack bookkeeping signatures
        set_attr(self, "_nbr_pos", None)
        set_attr(self, "_init_in_count", tuple(in_count))
        set_attr(self, "_init_sink_ids", init_sinks)
        set_attr(self, "_dest_id", node_id[self.destination])

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_directed_edges(
        cls,
        nodes: Sequence[Node],
        destination: Node,
        edges: Iterable[DirectedEdge],
    ) -> "LinkReversalInstance":
        """Build an instance from an explicit list of initially directed edges."""
        return cls(tuple(nodes), destination, tuple((u, v) for u, v in edges))

    @classmethod
    def from_networkx(cls, graph, destination: Node) -> "LinkReversalInstance":
        """Build an instance from a ``networkx.DiGraph`` (the initial orientation).

        The node iteration order of the DiGraph is preserved.
        """
        nodes = tuple(graph.nodes())
        edges = tuple(graph.edges())
        return cls(nodes, destination, edges)

    def to_networkx(self):
        """Return the initial orientation ``G'_init`` as a ``networkx.DiGraph``."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.initial_edges)
        return graph

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def non_destination_nodes(self) -> Tuple[Node, ...]:
        """All nodes except the destination (the nodes that may take steps)."""
        return tuple(u for u in self.nodes if u != self.destination)

    @property
    def undirected_edges(self) -> FrozenSet[UndirectedEdge]:
        """The edge set ``E`` of the undirected graph ``G``."""
        return frozenset(undirected(u, v) for u, v in self.initial_edges)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges ``|E|``."""
        return len(self.initial_edges)

    @property
    def node_count(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self.nodes)

    def nbrs(self, u: Node) -> FrozenSet[Node]:
        """Neighbours of ``u`` in the undirected graph ``G`` (constant)."""
        return self._nbrs[u]

    def in_nbrs(self, u: Node) -> FrozenSet[Node]:
        """Nodes with edges directed *towards* ``u`` in ``G'_init`` (constant)."""
        return self._in_nbrs[u]

    def out_nbrs(self, u: Node) -> FrozenSet[Node]:
        """Nodes with edges directed *away from* ``u`` in ``G'_init`` (constant)."""
        return self._out_nbrs[u]

    def degree(self, u: Node) -> int:
        """Degree of ``u`` in the undirected graph."""
        return len(self._nbrs[u])

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether ``{u, v}`` is an edge of ``G``."""
        return (u, v) in self._edge_id

    def iter_edges(self) -> Iterator[DirectedEdge]:
        """Iterate over the initial directed edges in declaration order."""
        return iter(self.initial_edges)

    # ------------------------------------------------------------------
    # indexed views (built once in __post_init__)
    # ------------------------------------------------------------------
    def node_index(self, u: Node) -> int:
        """Dense integer index of node ``u`` (instance declaration order)."""
        return self._node_id[u]

    def edge_index(self, u: Node, v: Node) -> int:
        """Global index of the undirected edge ``{u, v}``.

        Raises ``KeyError`` if ``{u, v}`` is not an edge; the lookup allocates
        nothing beyond the key tuple (no frozensets).
        """
        return self._edge_id[(u, v)]

    def edge_endpoints(self, edge_index: int) -> DirectedEdge:
        """The ``(tail, head)`` pair of edge ``edge_index`` in ``G'_init``."""
        return self.initial_edges[edge_index]

    def incident_edge_ids(self, u: Node) -> Tuple[int, ...]:
        """Indices of the edges incident to ``u`` (CSR-style index list)."""
        return self._incident_eids[self._node_id[u]]

    def incident_neighbours(self, u: Node) -> Tuple[Node, ...]:
        """Neighbours of ``u`` aligned with :meth:`incident_edge_ids`."""
        return self._incident_nbrs[self._node_id[u]]

    def pack_neighbour_sets(self, sets: Mapping[Node, Iterable[Node]]) -> int:
        """Pack per-node neighbour subsets into one int (CSR bit layout).

        Each node owns ``degree(u)`` consecutive bits (offset by the CSR row
        start); bit ``k`` of node ``u``'s span is set iff ``u``'s ``k``-th
        incident neighbour is in ``sets[u]``.  Used by the algorithm states to
        turn ``list[u]`` / ``marked[u]`` bookkeeping into compact signature
        ints for the model checker.
        """
        packed = 0
        node_id = self._node_id
        offsets = self._csr_offsets
        positions = self._nbr_pos
        if positions is None:
            positions = tuple(
                {v: pos for pos, v in enumerate(neighbours)}
                for neighbours in self._incident_nbrs
            )
            object.__setattr__(self, "_nbr_pos", positions)
        for u, members in sets.items():
            if not members:
                continue
            i = node_id[u]
            base = offsets[i]
            pos = positions[i]
            for v in members:
                packed |= 1 << (base + pos[v])
        return packed

    def unpack_neighbour_sets(self, packed: int) -> Dict[Node, FrozenSet[Node]]:
        """Inverse of :meth:`pack_neighbour_sets`: decode per-node subsets.

        The model checker explores pure int signatures; this reconstructs the
        bookkeeping component (``list[u]`` per node) when a state object is
        needed again — predicate evaluation, counterexample replay.
        """
        result: Dict[Node, FrozenSet[Node]] = {}
        offsets = self._csr_offsets
        degrees = self._degree
        neighbours = self._incident_nbrs
        for i, u in enumerate(self.nodes):
            row = (packed >> offsets[i]) & ((1 << degrees[i]) - 1)
            if row:
                result[u] = frozenset(
                    v for k, v in enumerate(neighbours[i]) if (row >> k) & 1
                )
            else:
                result[u] = frozenset()
        return result

    # ------------------------------------------------------------------
    # initial-orientation structure
    # ------------------------------------------------------------------
    def initial_orientation(self) -> "Orientation":
        """Return the mutable orientation corresponding to ``G'_init``."""
        return Orientation(
            self, 0, list(self._init_in_count), set(self._init_sink_ids)
        )

    def initial_sinks(self) -> Tuple[Node, ...]:
        """Nodes that are sinks in ``G'_init`` (every incident edge incoming)."""
        return tuple(self.nodes[i] for i in sorted(self._init_sink_ids))

    def initial_sources(self) -> Tuple[Node, ...]:
        """Nodes that are sources in ``G'_init`` (every incident edge outgoing)."""
        return tuple(
            u
            for u in self.nodes
            if self._nbrs[u] and not self._in_nbrs[u]
        )

    def is_initially_acyclic(self) -> bool:
        """Whether ``G'_init`` is a DAG (a requirement of the system model).

        Kahn's algorithm over the precomputed index arrays.
        """
        n = len(self.nodes)
        indegree = list(self._init_in_count)
        succ: List[List[int]] = [[] for _ in range(n)]
        for tail_id, head_id in self._edge_node_ids:
            succ[tail_id].append(head_id)
        queue = [i for i in range(n) if indegree[i] == 0]
        removed = 0
        while queue:
            i = queue.pop()
            removed += 1
            for j in succ[i]:
                indegree[j] -= 1
                if indegree[j] == 0:
                    queue.append(j)
        return removed == n

    def is_connected(self) -> bool:
        """Whether the undirected graph ``G`` is connected."""
        if not self.nodes:
            return True
        seen = {self.nodes[0]}
        frontier = [self.nodes[0]]
        while frontier:
            u = frontier.pop()
            for v in self._nbrs[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == len(self.nodes)

    def validate(self, require_dag: bool = True, require_connected: bool = False) -> None:
        """Raise :class:`GraphValidationError` if the instance violates the model.

        Parameters
        ----------
        require_dag:
            The paper assumes the initial graph is a DAG.  Set to ``False``
            only for experiments that deliberately start from a non-DAG.
        require_connected:
            Routing experiments typically need a connected graph.
        """
        if require_dag and not self.is_initially_acyclic():
            raise GraphValidationError("initial orientation contains a cycle")
        if require_connected and not self.is_connected():
            raise GraphValidationError("underlying undirected graph is not connected")

    def bad_nodes(self) -> FrozenSet[Node]:
        """Nodes with no directed path to the destination in ``G'_init``.

        This is the set whose cardinality ``n_b`` parameterises the
        Θ(n_b²) worst-case work bound discussed in Section 1 of the paper.
        """
        return self.initial_orientation().nodes_without_path_to_destination()

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def relabelled(self, mapping: Mapping[Node, Node]) -> "LinkReversalInstance":
        """Return a copy of the instance with nodes renamed via ``mapping``."""
        return LinkReversalInstance(
            nodes=tuple(mapping[u] for u in self.nodes),
            destination=mapping[self.destination],
            initial_edges=tuple((mapping[u], mapping[v]) for u, v in self.initial_edges),
        )

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"LinkReversalInstance(|V|={self.node_count}, |E|={self.edge_count}, "
            f"destination={self.destination!r})"
        )


def _derive_counters(
    instance: LinkReversalInstance, mask: int
) -> Tuple[List[int], set]:
    """Incoming-edge counters and sink ids of an arbitrary reversal mask."""
    in_count: List[int] = []
    sink_ids: set = set()
    degree = instance._degree
    tail_sel = instance._tail_sel
    incident_mask = instance._incident_mask
    for i in range(len(instance.nodes)):
        toward = ~(mask ^ tail_sel[i]) & incident_mask[i]
        count = toward.bit_count()
        in_count.append(count)
        if degree[i] and count == degree[i]:
            sink_ids.add(i)
    return in_count, sink_ids


class Orientation:
    """A directed version ``G'`` of the undirected graph ``G``.

    Internally the orientation is a single int bitmask over the instance's
    global edge index: bit ``e`` is clear when edge ``e`` points as in
    ``G'_init`` and set when it is reversed.  This representation makes the
    paper's Invariant 3.1 (``dir[u, v] = in`` iff ``dir[v, u] = out``) true by
    construction while keeping every ``dir`` lookup and ``reverse_edge`` O(1).
    Alongside the mask the orientation maintains per-node incoming-edge
    counters and the set of current sinks incrementally, so ``sinks()`` and
    ``is_sink()`` never rescan the graph, and ``copy()`` is one int plus one
    counter-array copy — the model checker copies orientations for every
    explored transition.
    """

    __slots__ = ("instance", "_mask", "_in_count", "_sink_ids")

    def __init__(
        self,
        instance: LinkReversalInstance,
        mask: int = 0,
        in_count: Optional[List[int]] = None,
        sink_ids: Optional[set] = None,
    ):
        self.instance = instance
        self._mask = mask
        if in_count is None:
            in_count, derived_sinks = _derive_counters(instance, mask)
            if sink_ids is None:
                sink_ids = derived_sinks
        elif sink_ids is None:
            degree = instance._degree
            sink_ids = {
                i
                for i in range(len(instance.nodes))
                if degree[i] and in_count[i] == degree[i]
            }
        self._in_count = in_count
        self._sink_ids = sink_ids

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_directed_edges(
        cls, instance: LinkReversalInstance, edges: Iterable[DirectedEdge]
    ) -> "Orientation":
        """Build an orientation from explicit directed edges ``u -> v``."""
        edge_id = instance._edge_id
        initial = instance.initial_edges
        mask = 0
        seen = 0
        for u, v in edges:
            e = edge_id.get((u, v))
            if e is None:
                raise GraphValidationError(f"({u!r}, {v!r}) is not an edge of the instance")
            bit = 1 << e
            # the declared head is ``v``; the edge is reversed iff that differs
            # from the initial head
            if initial[e][1] == v:
                mask &= ~bit
            else:
                mask |= bit
            seen |= bit
        missing_bits = seen ^ ((1 << len(initial)) - 1)
        if missing_bits:
            missing = [
                tuple(sorted(map(str, initial[e])))
                for e in range(len(initial))
                if (missing_bits >> e) & 1
            ]
            raise GraphValidationError(f"orientation missing directions for {sorted(missing)!r}")
        return cls(instance, mask)

    @classmethod
    def from_mask(cls, instance: LinkReversalInstance, mask: int) -> "Orientation":
        """Build an orientation directly from a reversal bitmask (a signature)."""
        return cls(instance, mask)

    def copy(self) -> "Orientation":
        """Return an independent copy of this orientation."""
        return Orientation(
            self.instance, self._mask, self._in_count.copy(), self._sink_ids.copy()
        )

    # ------------------------------------------------------------------
    # the paper's ``dir`` view
    # ------------------------------------------------------------------
    def _head_of(self, u: Node, v: Node) -> Node:
        """Current head of edge ``{u, v}`` via the edge index (no allocation)."""
        e = self.instance._edge_id[(u, v)]
        tail, head = self.instance.initial_edges[e]
        return tail if (self._mask >> e) & 1 else head

    def dir(self, u: Node, v: Node) -> EdgeDirection:
        """The paper's ``dir[u, v]`` variable: direction of ``{u, v}`` from ``u``."""
        return EdgeDirection.IN if self._head_of(u, v) == u else EdgeDirection.OUT

    def head(self, u: Node, v: Node) -> Node:
        """The node the edge ``{u, v}`` currently points to."""
        return self._head_of(u, v)

    def tail(self, u: Node, v: Node) -> Node:
        """The node the edge ``{u, v}`` currently points away from."""
        return v if self._head_of(u, v) == u else u

    def points_towards(self, u: Node, v: Node) -> bool:
        """Whether the edge between ``u`` and ``v`` is currently directed ``u -> v``."""
        return self._head_of(u, v) == v

    def _flip(self, e: int) -> None:
        """Flip edge ``e``, maintaining the counters and the sink set."""
        instance = self.instance
        tail_id, head_id = instance._edge_node_ids[e]
        if (self._mask >> e) & 1:
            old_head, new_head = tail_id, head_id
        else:
            old_head, new_head = head_id, tail_id
        self._mask ^= 1 << e
        in_count = self._in_count
        in_count[old_head] -= 1
        self._sink_ids.discard(old_head)
        gained = in_count[new_head] + 1
        in_count[new_head] = gained
        if gained == instance._degree[new_head]:
            self._sink_ids.add(new_head)

    def reverse_edge(self, u: Node, v: Node) -> None:
        """Flip the direction of the edge ``{u, v}`` (in place)."""
        self._flip(self.instance._edge_id[(u, v)])

    def reverse_edges_from(self, u: Node, targets: Iterable[Node]) -> Tuple[Node, ...]:
        """Reverse the edges between ``u`` and each node in ``targets``.

        Only edges currently directed *towards* ``u`` are flipped (matching the
        automata, where a reversing node is a sink so all its edges point at
        it); edges already directed away from ``u`` are left untouched.
        Returns the neighbours whose edge was actually flipped.
        """
        edge_id = self.instance._edge_id
        flipped: List[Node] = []
        for v in targets:
            e = edge_id[(u, v)]
            if self._head_bit_points_at_u(e, u):
                self._flip(e)
                flipped.append(v)
        return tuple(flipped)

    def _head_bit_points_at_u(self, e: int, u: Node) -> bool:
        """Whether edge ``e`` currently points at ``u`` (one of its endpoints)."""
        tail, head = self.instance.initial_edges[e]
        current_head = tail if (self._mask >> e) & 1 else head
        return current_head == u

    # ------------------------------------------------------------------
    # node-level structure
    # ------------------------------------------------------------------
    def _toward_mask(self, node_id: int) -> int:
        """Bitmask of the incident edges currently pointing at node ``node_id``.

        An incident edge points at the node iff its reversal bit differs from
        the node's tail-selector bit, hence one XOR + NOT + AND over the
        incident-edge selector.
        """
        instance = self.instance
        return ~(self._mask ^ instance._tail_sel[node_id]) & instance._incident_mask[node_id]

    def current_in_nbrs(self, u: Node) -> FrozenSet[Node]:
        """Neighbours whose edge currently points towards ``u``."""
        instance = self.instance
        i = instance._node_id[u]
        toward = self._toward_mask(i)
        return frozenset(
            v
            for e, v in zip(instance._incident_eids[i], instance._incident_nbrs[i])
            if (toward >> e) & 1
        )

    def current_out_nbrs(self, u: Node) -> FrozenSet[Node]:
        """Neighbours whose edge currently points away from ``u``."""
        instance = self.instance
        i = instance._node_id[u]
        toward = self._toward_mask(i)
        return frozenset(
            v
            for e, v in zip(instance._incident_eids[i], instance._incident_nbrs[i])
            if not (toward >> e) & 1
        )

    def is_sink(self, u: Node) -> bool:
        """Whether ``u`` is a sink: it has neighbours and every incident edge is incoming.

        The destination is never considered a sink for scheduling purposes by
        the automata (it never takes steps), but this predicate is purely
        structural and applies to any node.  O(1) via the incremental sink set.
        """
        return self.instance._node_id[u] in self._sink_ids

    def is_source(self, u: Node) -> bool:
        """Whether ``u`` has neighbours and every incident edge is outgoing."""
        i = self.instance._node_id[u]
        return self.instance._degree[i] > 0 and self._in_count[i] == 0

    def sinks(self, exclude_destination: bool = True) -> Tuple[Node, ...]:
        """All sink nodes, optionally excluding the destination.

        Served from the incrementally maintained sink set — no node rescan.
        The result is ordered by instance node order, as before.
        """
        instance = self.instance
        sink_ids = self._sink_ids
        if exclude_destination and instance._dest_id in sink_ids:
            sink_ids = sink_ids - {instance._dest_id}
        nodes = instance.nodes
        return tuple(nodes[i] for i in sorted(sink_ids))

    def sink_count(self, exclude_destination: bool = True) -> int:
        """Number of current sinks, O(1)."""
        count = len(self._sink_ids)
        if exclude_destination and self.instance._dest_id in self._sink_ids:
            count -= 1
        return count

    # ------------------------------------------------------------------
    # whole-graph structure
    # ------------------------------------------------------------------
    def directed_edges(self) -> Tuple[DirectedEdge, ...]:
        """All edges as directed pairs ``(tail, head)`` in instance edge order."""
        mask = self._mask
        return tuple(
            (head, tail) if (mask >> e) & 1 else (tail, head)
            for e, (tail, head) in enumerate(self.instance.initial_edges)
        )

    def _successor_ids(self) -> List[List[int]]:
        """Per-node-id successor lists of the current directed graph."""
        succ: List[List[int]] = [[] for _ in self.instance.nodes]
        mask = self._mask
        for e, (tail_id, head_id) in enumerate(self.instance._edge_node_ids):
            if (mask >> e) & 1:
                succ[head_id].append(tail_id)
            else:
                succ[tail_id].append(head_id)
        return succ

    def _predecessor_ids(self) -> List[List[int]]:
        """Per-node-id predecessor lists of the current directed graph."""
        pred: List[List[int]] = [[] for _ in self.instance.nodes]
        mask = self._mask
        for e, (tail_id, head_id) in enumerate(self.instance._edge_node_ids):
            if (mask >> e) & 1:
                pred[tail_id].append(head_id)
            else:
                pred[head_id].append(tail_id)
        return pred

    def to_networkx(self):
        """Return the current directed graph ``G'`` as a ``networkx.DiGraph``."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.instance.nodes)
        graph.add_edges_from(self.directed_edges())
        return graph

    def is_acyclic(self) -> bool:
        """Whether the current directed graph is a DAG (Kahn over index arrays)."""
        n = len(self.instance.nodes)
        succ = self._successor_ids()
        indegree = [0] * n
        for targets in succ:
            for h in targets:
                indegree[h] += 1
        queue = [i for i in range(n) if indegree[i] == 0]
        removed = 0
        while queue:
            i = queue.pop()
            removed += 1
            for h in succ[i]:
                indegree[h] -= 1
                if indegree[h] == 0:
                    queue.append(h)
        return removed == n

    def find_cycle(self) -> Tuple[Node, ...]:
        """Return a directed cycle as a node tuple, or ``()`` if none exists.

        Used by the verification layer to produce counterexample traces.
        """
        nodes = self.instance.nodes
        n = len(nodes)
        succ = self._successor_ids()

        WHITE, GREY, BLACK = 0, 1, 2
        colour = [WHITE] * n
        parent = [0] * n

        for root in range(n):
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[int, Iterator[int]]] = [(root, iter(succ[root]))]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(succ[nxt])))
                        advanced = True
                        break
                    if colour[nxt] == GREY:
                        cycle = [nxt, node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return tuple(nodes[i] for i in cycle[:-1])
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return ()

    def _reachable_ids_to_destination(self) -> List[int]:
        """Node ids with a directed path to the destination (BFS over ids)."""
        pred = self._predecessor_ids()
        reached = [False] * len(pred)
        dest = self.instance._dest_id
        reached[dest] = True
        frontier = [dest]
        result = [dest]
        while frontier:
            i = frontier.pop()
            for j in pred[i]:
                if not reached[j]:
                    reached[j] = True
                    result.append(j)
                    frontier.append(j)
        return result

    def nodes_with_path_to_destination(self) -> FrozenSet[Node]:
        """Nodes that currently have a directed path to the destination."""
        nodes = self.instance.nodes
        return frozenset(nodes[i] for i in self._reachable_ids_to_destination())

    def nodes_without_path_to_destination(self) -> FrozenSet[Node]:
        """Nodes with no directed path to the destination (the "bad" nodes)."""
        return frozenset(self.instance.nodes) - self.nodes_with_path_to_destination()

    def is_destination_oriented(self) -> bool:
        """Whether every node has a directed path to the destination.

        This is the goal condition of link-reversal routing: the graph is
        *destination oriented* when the only sink is the destination and every
        node can reach it.
        """
        return len(self._reachable_ids_to_destination()) == len(self.instance.nodes)

    def shortest_path_to_destination(self, u: Node) -> Tuple[Node, ...]:
        """A shortest directed path from ``u`` to the destination, or ``()``.

        Breadth-first search over the current orientation; used by the routing
        layer to extract routes and measure stretch.
        """
        instance = self.instance
        destination_id = instance._dest_id
        start = instance._node_id[u]
        if start == destination_id:
            return (u,)
        succ = self._successor_ids()
        n = len(succ)
        parent = [-1] * n
        frontier = [start]
        seen = [False] * n
        seen[start] = True
        while frontier:
            next_frontier: List[int] = []
            for w in frontier:
                for x in succ[w]:
                    if seen[x]:
                        continue
                    parent[x] = w
                    if x == destination_id:
                        path_ids = [x]
                        while path_ids[-1] != start:
                            path_ids.append(parent[path_ids[-1]])
                        path_ids.reverse()
                        return tuple(instance.nodes[i] for i in path_ids)
                    seen[x] = True
                    next_frontier.append(x)
            frontier = next_frontier
        return ()

    # ------------------------------------------------------------------
    # hashing / equality (used by the model checker)
    # ------------------------------------------------------------------
    def signature(self) -> int:
        """A canonical, hashable fingerprint of this orientation.

        The reversal bitmask itself: one compact int.  Signatures of
        orientations over the same instance are equal iff the orientations
        are; the model checker dedups on these directly.
        """
        return self._mask

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Orientation):
            return NotImplemented
        if self.instance is other.instance:
            return self._mask == other._mask
        # distinct instance objects: equal iff they orient the same undirected
        # edges the same way, independent of edge declaration order
        return frozenset(self.directed_edges()) == frozenset(other.directed_edges())

    def __hash__(self) -> int:
        return hash(frozenset(self.directed_edges()))

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        edges = ", ".join(f"{t}->{h}" for t, h in self.directed_edges())
        return f"Orientation({edges})"


def all_orientations(instance: LinkReversalInstance) -> Iterator[Orientation]:
    """Yield every possible orientation of the instance's undirected edges.

    Exponential in ``|E|``; intended for exhaustive testing on tiny graphs.
    Enumerates reversal bitmasks directly, one orientation per mask.
    """
    for mask in range(1 << instance.edge_count):
        yield Orientation(instance, mask)
