"""Shared state and action machinery for the link-reversal automata.

Every algorithm in this package (PR, OneStepPR, NewPR, FR, BLL, the height
based formulations) operates on the same underlying state component: the
current :class:`~repro.core.graph.Orientation` of the edges.  The algorithms
differ only in the extra bookkeeping each node keeps (a neighbour list, a step
counter, link labels, or a height) and in which incident edges a sink reverses
when it takes a step.

This module provides:

* :class:`LinkReversalState` — the common base class holding the orientation
  and exposing the structural queries shared by all algorithms (sinks,
  destination-orientation, acyclicity, signatures for the model checker);
* :class:`Reverse` — the single-node ``reverse(u)`` action used by OneStepPR,
  NewPR, FR, BLL and the height automata;
* :class:`LinkReversalAutomaton` — a base class implementing the pieces of the
  :class:`~repro.automata.ioa.IOAutomaton` interface that are identical across
  algorithms (single-node action enumeration from the sink set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterator, Optional, Tuple

from repro.automata.ioa import Action, IOAutomaton, TransitionError
from repro.core.graph import EdgeDirection, LinkReversalInstance, Orientation

Node = Hashable


@dataclass(frozen=True)
class Reverse(Action):
    """The ``reverse(u)`` action: the single node ``u`` (a sink) takes a step."""

    node: Node

    def actors(self) -> Tuple[Node, ...]:
        return (self.node,)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"reverse({self.node})"


class LinkReversalState:
    """Base class for the state of every link-reversal automaton.

    Holds the immutable problem :class:`~repro.core.graph.LinkReversalInstance`
    and the current mutable :class:`~repro.core.graph.Orientation`.  Subclasses
    add their per-node bookkeeping and extend :meth:`signature` and
    :meth:`copy` accordingly.
    """

    __slots__ = ("instance", "orientation")

    def __init__(self, instance: LinkReversalInstance, orientation: Orientation):
        self.instance = instance
        self.orientation = orientation

    # ------------------------------------------------------------------
    # the paper's state variables
    # ------------------------------------------------------------------
    def dir(self, u: Node, v: Node) -> EdgeDirection:
        """The ``dir[u, v]`` state variable."""
        return self.orientation.dir(u, v)

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def is_sink(self, u: Node) -> bool:
        """Whether every edge incident to ``u`` currently points towards it."""
        return self.orientation.is_sink(u)

    def sinks(self) -> Tuple[Node, ...]:
        """All non-destination sinks (the nodes allowed to take a step)."""
        return self.orientation.sinks(exclude_destination=True)

    def is_acyclic(self) -> bool:
        """Whether the current directed graph ``G'`` is acyclic."""
        return self.orientation.is_acyclic()

    def is_destination_oriented(self) -> bool:
        """Whether every node currently has a directed path to the destination."""
        return self.orientation.is_destination_oriented()

    def directed_edges(self) -> Tuple[Tuple[Node, Node], ...]:
        """The current directed edge set of ``G'``."""
        return self.orientation.directed_edges()

    def graph_signature(self) -> int:
        """Canonical fingerprint of the orientation component only (``s.G'``).

        A compact int — the orientation's reversal bitmask over the instance's
        global edge index.  Simulation relations compare states of *different*
        automata by this component ("``s.G' = t.G'``" in the paper), so it is
        exposed separately from the full :meth:`signature`.
        """
        return self.orientation.signature()

    # ------------------------------------------------------------------
    # protocol expected by the framework (subclasses must extend)
    # ------------------------------------------------------------------
    def copy(self) -> "LinkReversalState":
        """Return an independent copy of this state."""
        return type(self)(self.instance, self.orientation.copy())

    def signature(self) -> Hashable:
        """A hashable canonical form of the full state (for reachability)."""
        return self.graph_signature()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkReversalState):
            return NotImplemented
        # signatures are instance-relative (bitmask over the instance's edge
        # index), so states only compare equal over the same problem instance
        return (
            type(self) is type(other)
            and (self.instance is other.instance or self.instance == other.instance)
            and self.signature() == other.signature()
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.signature()))

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"<{type(self).__name__} edges={self.graph_signature()}>"


class LinkReversalAutomaton(IOAutomaton):
    """Base class for automata whose only actions are single-node ``reverse(u)``.

    Subclasses implement :meth:`_reversal_targets` (which incident edges the
    sink reverses) and :meth:`_update_bookkeeping` (the per-node extra state),
    plus :meth:`initial_state`.
    """

    def __init__(self, instance: LinkReversalInstance, require_dag: bool = True):
        instance.validate(require_dag=require_dag)
        self.instance = instance

    # -- pieces shared by every single-node automaton ---------------------
    def enabled_actions(self, state: LinkReversalState) -> Iterator[Action]:
        for u in state.sinks():
            yield Reverse(u)

    def enabled_single_actions(self, state: LinkReversalState) -> Iterator[Action]:
        return self.enabled_actions(state)

    def is_enabled(self, state: LinkReversalState, action: Action) -> bool:
        if not isinstance(action, Reverse):
            return False
        u = action.node
        if u == self.instance.destination:
            return False
        return state.is_sink(u)

    def apply(self, state: LinkReversalState, action: Action) -> LinkReversalState:
        if not self.is_enabled(state, action):
            raise TransitionError(f"{action!r} is not enabled")
        return self._apply_reverse(state, action.node)

    # -- subclass responsibilities ----------------------------------------
    def _apply_reverse(self, state: LinkReversalState, node: Node) -> LinkReversalState:
        raise NotImplementedError
