"""The original Partial Reversal automaton ``PR`` (Algorithm 1 of the paper).

The whole system is a single I/O automaton with one family of actions,
``reverse(S)``, where ``S`` is a non-empty set of nodes not containing the
destination and every node in ``S`` is a sink.  Each node ``u`` keeps a state
variable ``list[u]`` — the set of neighbours that reversed their edge towards
``u`` since the last time ``u`` took a step (initially empty).

Effect of ``reverse(S)`` for each ``u ∈ S`` (Algorithm 1):

* if ``list[u] != nbrs(u)``, reverse exactly the edges to ``nbrs(u) \\ list[u]``;
* otherwise (the list contains *all* neighbours), reverse every incident edge;
* every neighbour ``v`` whose edge was reversed adds ``u`` to ``list[v]``;
* finally ``list[u]`` is emptied.

Because all nodes in ``S`` are sinks, no two of them are adjacent, so the
per-node effects are independent and can be applied in any order.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from repro.automata.ioa import Action, IOAutomaton, TransitionError
from repro.core.base import LinkReversalState, Reverse
from repro.core.graph import LinkReversalInstance, Orientation

Node = Hashable


@dataclass(frozen=True)
class ReverseSet(Action):
    """The ``reverse(S)`` action of PR: every node in ``S`` steps simultaneously."""

    nodes: FrozenSet[Node]

    def __post_init__(self) -> None:
        if not isinstance(self.nodes, frozenset):
            object.__setattr__(self, "nodes", frozenset(self.nodes))
        if not self.nodes:
            raise ValueError("reverse(S) requires a non-empty set S")

    def actors(self) -> Tuple[Node, ...]:
        return tuple(sorted(self.nodes, key=repr))

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"reverse({{{', '.join(map(str, self.actors()))}}})"


class PRState(LinkReversalState):
    """State of the PR automaton: edge directions plus ``list[u]`` per node."""

    __slots__ = ("lists",)

    def __init__(
        self,
        instance: LinkReversalInstance,
        orientation: Orientation,
        lists: Optional[Mapping[Node, FrozenSet[Node]]] = None,
    ):
        super().__init__(instance, orientation)
        if lists is None:
            lists = {u: frozenset() for u in instance.nodes}
        self.lists: Dict[Node, FrozenSet[Node]] = dict(lists)

    def list_of(self, u: Node) -> FrozenSet[Node]:
        """The paper's ``list[u]``: neighbours that reversed towards ``u`` since its last step."""
        return self.lists[u]

    def copy(self) -> "PRState":
        return PRState(self.instance, self.orientation.copy(), dict(self.lists))

    def signature(self) -> int:
        """One compact int: ``list[u]`` packed as neighbour bitmasks above the
        orientation's reversal bitmask (CSR bit layout of the instance)."""
        instance = self.instance
        return (
            instance.pack_neighbour_sets(self.lists) << instance.edge_count
        ) | self.graph_signature()


class PartialReversal(IOAutomaton):
    """Algorithm 1: the original Partial Reversal automaton with set actions.

    ``enabled_actions`` enumerates every non-empty subset of the current sink
    set (exponentially many); most callers use :meth:`enabled_single_actions`
    (singleton sets only) or the greedy "all sinks at once" action via
    :meth:`greedy_action`.
    """

    name = "PR"

    def __init__(self, instance: LinkReversalInstance, require_dag: bool = True):
        instance.validate(require_dag=require_dag)
        self.instance = instance

    # ------------------------------------------------------------------
    # IOAutomaton interface
    # ------------------------------------------------------------------
    def initial_state(self) -> PRState:
        return PRState(self.instance, self.instance.initial_orientation())

    def enabled_actions(self, state: PRState) -> Iterator[Action]:
        sinks = state.sinks()
        # non-empty subsets of the sink set, smallest first for determinism
        for size in range(1, len(sinks) + 1):
            for subset in combinations(sinks, size):
                yield ReverseSet(frozenset(subset))

    def enabled_single_actions(self, state: PRState) -> Iterator[Action]:
        for u in state.sinks():
            yield ReverseSet(frozenset((u,)))

    def greedy_action(self, state: PRState) -> Optional[ReverseSet]:
        """The "all current sinks step together" action, or ``None`` if quiescent."""
        sinks = state.sinks()
        if not sinks:
            return None
        return ReverseSet(frozenset(sinks))

    def is_enabled(self, state: PRState, action: Action) -> bool:
        if isinstance(action, Reverse):
            action = ReverseSet(frozenset((action.node,)))
        if not isinstance(action, ReverseSet):
            return False
        if not action.nodes:
            return False
        if self.instance.destination in action.nodes:
            return False
        return all(state.is_sink(u) for u in action.nodes)

    def apply(self, state: PRState, action: Action) -> PRState:
        if isinstance(action, Reverse):
            action = ReverseSet(frozenset((action.node,)))
        if not self.is_enabled(state, action):
            raise TransitionError(f"{action!r} is not enabled in the given PR state")

        new_state = state.copy()
        orientation = new_state.orientation
        lists = new_state.lists

        for u in action.nodes:
            nbrs = self.instance.nbrs(u)
            u_list = state.lists[u]
            if u_list != nbrs:
                targets = nbrs - u_list
            else:
                targets = nbrs
            # u was a sink: every targeted edge points at u and gets flipped
            for v in orientation.reverse_edges_from(u, targets):
                lists[v] = lists[v] | {u}
            lists[u] = frozenset()
        return new_state

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def reversal_targets(self, state: PRState, u: Node) -> FrozenSet[Node]:
        """The set of neighbours whose edge ``u`` would reverse if it stepped now."""
        nbrs = self.instance.nbrs(u)
        u_list = state.lists[u]
        return frozenset(nbrs if u_list == nbrs else nbrs - u_list)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PartialReversal({self.instance})"
