"""The ``OneStepPR`` automaton (Algorithm 3 of the paper).

OneStepPR is identical to PR except that only a *single* node takes a step at
a time: the action family is ``reverse(u)`` rather than ``reverse(S)``.  The
state variables (``dir`` and ``list``) and the effect of a step are exactly
those of PR restricted to one node.

The paper uses OneStepPR as the intermediate automaton in the two-stage
simulation argument: relation R′ maps PR to OneStepPR (Lemma 5.1 /
Theorem 5.2) and relation R maps OneStepPR to NewPR (Lemma 5.3 /
Theorem 5.4).
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterator

from repro.automata.ioa import Action, TransitionError
from repro.core.base import LinkReversalAutomaton, Reverse
from repro.core.graph import LinkReversalInstance
from repro.core.pr import PRState

Node = Hashable


class OneStepPRState(PRState):
    """State of OneStepPR — structurally identical to :class:`PRState`.

    A distinct type is used so that states of the two automata cannot be
    accidentally interchanged in the simulation-relation checker.
    """

    def copy(self) -> "OneStepPRState":
        return OneStepPRState(self.instance, self.orientation.copy(), dict(self.lists))


class OneStepPartialReversal(LinkReversalAutomaton):
    """Algorithm 3: Partial Reversal with one node stepping at a time."""

    name = "OneStepPR"

    def initial_state(self) -> OneStepPRState:
        return OneStepPRState(self.instance, self.instance.initial_orientation())

    def reversal_targets(self, state: OneStepPRState, u: Node) -> FrozenSet[Node]:
        """The neighbours whose edge ``u`` would reverse if it stepped now."""
        nbrs = self.instance.nbrs(u)
        u_list = state.lists[u]
        return frozenset(nbrs if u_list == nbrs else nbrs - u_list)

    def _apply_reverse(self, state: OneStepPRState, u: Node) -> OneStepPRState:
        new_state = state.copy()
        orientation = new_state.orientation
        lists = new_state.lists

        nbrs = self.instance.nbrs(u)
        u_list = state.lists[u]
        targets = nbrs if u_list == nbrs else nbrs - u_list
        for v in orientation.reverse_edges_from(u, targets):
            lists[v] = lists[v] | {u}
        lists[u] = frozenset()
        return new_state
