"""Binary Link Labels (BLL) — the generalised link-reversal mechanism.

Section 1 of the paper recalls that one of the two pre-existing acyclicity
proofs for Partial Reversal goes through the *Binary Link Labels* algorithm of
Welch and Walter: every (node, incident edge) pair carries a binary label, a
sink reverses the incident edges selected by its labels, and acyclicity is
guaranteed under a condition on the labelling.  Partial Reversal is the
special case in which a label marks "this neighbour reversed towards me since
my last step", and Full Reversal is the special case in which no label is ever
set.

This module implements the label *mechanism* so that both specialisations can
be instantiated and compared against the direct PR / FR automata (experiment
E13).  Concretely, each node ``u`` keeps a label ``marked[u][v] ∈ {0, 1}`` for
every neighbour ``v``.  When a sink ``u`` steps:

* if some incident edge is unmarked, ``u`` reverses exactly its unmarked
  edges;
* if every incident edge is marked, ``u`` reverses all of them;
* every neighbour ``v`` whose edge was reversed sets ``marked[v][u] := 1``;
* finally all of ``u``'s own labels are cleared to 0.

With all labels initially 0 this is *exactly* the Partial Reversal automaton
(``marked[u]`` plays the role of ``list[u]``); the equivalence is checked by
:func:`bll_matches_partial_reversal` and by the E13 benchmark.  The
``mark_on_reversal=False`` mode never sets labels, which degenerates to Full
Reversal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Mapping, Optional, Sequence, Tuple

from repro.core.base import LinkReversalAutomaton, LinkReversalState, Reverse
from repro.core.graph import LinkReversalInstance, Orientation

Node = Hashable


class BLLState(LinkReversalState):
    """State of the BLL automaton: edge directions plus binary labels per (node, edge)."""

    __slots__ = ("marks",)

    def __init__(
        self,
        instance: LinkReversalInstance,
        orientation: Orientation,
        marks: Optional[Mapping[Node, FrozenSet[Node]]] = None,
    ):
        super().__init__(instance, orientation)
        if marks is None:
            marks = {u: frozenset() for u in instance.nodes}
        self.marks: Dict[Node, FrozenSet[Node]] = dict(marks)

    def marked_neighbours(self, u: Node) -> FrozenSet[Node]:
        """Neighbours ``v`` of ``u`` whose incident edge is currently marked at ``u``."""
        return self.marks[u]

    def is_marked(self, u: Node, v: Node) -> bool:
        """Whether the edge to neighbour ``v`` is marked from ``u``'s perspective."""
        return v in self.marks[u]

    def copy(self) -> "BLLState":
        return BLLState(self.instance, self.orientation.copy(), dict(self.marks))

    def signature(self) -> int:
        """One compact int: ``marked[u]`` packed as neighbour bitmasks above
        the orientation's reversal bitmask (CSR bit layout of the instance)."""
        instance = self.instance
        return (
            instance.pack_neighbour_sets(self.marks) << instance.edge_count
        ) | self.graph_signature()


class BinaryLinkLabels(LinkReversalAutomaton):
    """The Binary Link Labels automaton.

    Parameters
    ----------
    instance:
        The link-reversal problem instance.
    initial_marks:
        Initial labelling, as a mapping from node to the set of neighbours
        whose incident edge is initially marked at that node.  Defaults to the
        all-unmarked labelling, which instantiates Partial Reversal.
    mark_on_reversal:
        When ``True`` (the default, PR semantics) a node marks the edge to any
        neighbour that reverses towards it.  When ``False`` labels are never
        set, which makes every step reverse all incident edges — i.e. Full
        Reversal.
    """

    name = "BLL"

    def __init__(
        self,
        instance: LinkReversalInstance,
        initial_marks: Optional[Mapping[Node, Sequence[Node]]] = None,
        mark_on_reversal: bool = True,
        require_dag: bool = True,
    ):
        super().__init__(instance, require_dag=require_dag)
        self.mark_on_reversal = mark_on_reversal
        marks: Dict[Node, FrozenSet[Node]] = {u: frozenset() for u in instance.nodes}
        if initial_marks:
            for u, neighbours in initial_marks.items():
                bad = set(neighbours) - set(instance.nbrs(u))
                if bad:
                    raise ValueError(
                        f"initial marks of node {u!r} reference non-neighbours {sorted(map(str, bad))}"
                    )
                marks[u] = frozenset(neighbours)
        self._initial_marks = marks

    def initial_state(self) -> BLLState:
        return BLLState(
            self.instance, self.instance.initial_orientation(), dict(self._initial_marks)
        )

    def reversal_targets(self, state: BLLState, u: Node) -> FrozenSet[Node]:
        """The neighbours whose edge ``u`` would reverse if it stepped now."""
        nbrs = self.instance.nbrs(u)
        marked = state.marks[u]
        if marked == nbrs:
            return nbrs
        return nbrs - marked

    def _apply_reverse(self, state: BLLState, u: Node) -> BLLState:
        new_state = state.copy()
        orientation = new_state.orientation
        marks = new_state.marks

        targets = self.reversal_targets(state, u)
        # u is a sink, so every targeted edge currently points at it
        for v in orientation.reverse_edges_from(u, targets):
            if self.mark_on_reversal:
                marks[v] = marks[v] | {u}
        marks[u] = frozenset()
        return new_state


def partial_reversal_as_bll(instance: LinkReversalInstance) -> BinaryLinkLabels:
    """The BLL instantiation that coincides with Partial Reversal."""
    return BinaryLinkLabels(instance, initial_marks=None, mark_on_reversal=True)


def full_reversal_as_bll(instance: LinkReversalInstance) -> BinaryLinkLabels:
    """The BLL instantiation that coincides with Full Reversal."""
    return BinaryLinkLabels(instance, initial_marks=None, mark_on_reversal=False)


def bll_matches_partial_reversal(
    instance: LinkReversalInstance, schedule: Sequence[Node]
) -> bool:
    """Check that BLL (all-unmarked start) and OneStepPR agree on a node schedule.

    Both automata are driven with the same sequence of stepping nodes; the
    function returns ``True`` if after every step the two directed graphs are
    identical and the BLL marks coincide with the PR lists.  Steps whose node
    is not a sink in the current state are skipped in both automata (so any
    node sequence is a valid "schedule hint").
    """
    from repro.core.one_step_pr import OneStepPartialReversal

    bll = partial_reversal_as_bll(instance)
    pr = OneStepPartialReversal(instance)
    bll_state = bll.initial_state()
    pr_state = pr.initial_state()
    for node in schedule:
        action = Reverse(node)
        bll_enabled = bll.is_enabled(bll_state, action)
        pr_enabled = pr.is_enabled(pr_state, action)
        if bll_enabled != pr_enabled:
            return False
        if not bll_enabled:
            continue
        bll_state = bll.apply(bll_state, action)
        pr_state = pr.apply(pr_state, action)
        if bll_state.graph_signature() != pr_state.graph_signature():
            return False
        if any(bll_state.marks[u] != pr_state.lists[u] for u in instance.nodes):
            return False
    return True
