"""The Full Reversal (FR) baseline algorithm of Gafni and Bertsekas.

Full Reversal is the simplest link-reversal algorithm: whenever a node is a
sink it reverses *all* of its incident edges.  The paper uses FR as the
contrast algorithm throughout Section 1:

* FR's acyclicity argument is immediate — the last node to step before a
  hypothetical cycle would have all edges outgoing, a contradiction
  (reproduced as experiment E9);
* FR and PR share the same Θ(n_b²) worst-case total-reversal bound even
  though PR "seems" more efficient (experiments E9/E10);
* game-theoretically, FR is a Nash equilibrium with maximal social cost,
  whereas PR attains the global optimum whenever it is an equilibrium
  (experiment E11).

Both a single-node automaton (``reverse(u)``) and a concurrent-set view (via
:meth:`FullReversal.greedy_action`) are provided, mirroring the PR automata.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterator, Mapping, Optional, Tuple

from repro.automata.ioa import Action
from repro.core.base import LinkReversalAutomaton, LinkReversalState, Reverse
from repro.core.graph import LinkReversalInstance, Orientation

Node = Hashable


class FRState(LinkReversalState):
    """State of the FR automaton: edge directions plus a per-node step counter.

    The counter is not part of Gafni–Bertsekas' original description — FR
    needs no bookkeeping at all — but keeping it makes work accounting and the
    comparison benchmarks uniform across algorithms.  It does not influence
    the transition relation.
    """

    __slots__ = ("counts",)

    def __init__(
        self,
        instance: LinkReversalInstance,
        orientation: Orientation,
        counts: Optional[Mapping[Node, int]] = None,
    ):
        super().__init__(instance, orientation)
        if counts is None:
            counts = {u: 0 for u in instance.nodes}
        self.counts: Dict[Node, int] = dict(counts)

    def count(self, u: Node) -> int:
        """Number of steps node ``u`` has taken so far."""
        return self.counts[u]

    def total_steps(self) -> int:
        """Total number of steps taken by all nodes."""
        return sum(self.counts.values())

    def copy(self) -> "FRState":
        return FRState(self.instance, self.orientation.copy(), dict(self.counts))

    def signature(self) -> int:
        # The counter is history-only; two states with the same orientation are
        # behaviourally identical, so the signature deliberately excludes it.
        return self.graph_signature()


class FullReversal(LinkReversalAutomaton):
    """The Full Reversal automaton: a sink reverses all of its incident edges."""

    name = "FR"

    def initial_state(self) -> FRState:
        return FRState(self.instance, self.instance.initial_orientation())

    def reversal_targets(self, state: FRState, u: Node) -> FrozenSet[Node]:
        """FR always reverses the edges to every neighbour."""
        return self.instance.nbrs(u)

    def greedy_action_nodes(self, state: FRState) -> Tuple[Node, ...]:
        """The set of all current sinks (they may all step in one concurrent round)."""
        return state.sinks()

    def _apply_reverse(self, state: FRState, u: Node) -> FRState:
        new_state = state.copy()
        # u is a sink, so this flips every incident edge
        new_state.orientation.reverse_edges_from(u, self.instance.incident_neighbours(u))
        new_state.counts[u] = state.counts[u] + 1
        return new_state
