"""The paper's new algorithm ``NewPR`` (Algorithm 2).

NewPR dispenses with the dynamic neighbour list of PR.  Each node ``u`` keeps
only a step counter ``count[u]`` (a *history variable*; initially 0) whose
parity determines which of two *constant* sets ``u`` reverses when it is a
sink:

* ``parity[u] = even`` → reverse the edges to ``in_nbrs(u)`` (the initial
  in-neighbours);
* ``parity[u] = odd``  → reverse the edges to ``out_nbrs(u)`` (the initial
  out-neighbours).

A step always increments ``count[u]``.  If the selected set is empty (the node
was initially a source or a sink), the step is a *dummy step*: no edge is
reversed, only the parity flips, and the node remains a sink so it can take a
"real" step next time.  The dummy step is what lets the paper state the clean
counting invariants (Invariant 4.2) that drive the label-free acyclicity
proof (Theorem 4.3).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Hashable, Mapping, Optional, Tuple

from repro.core.base import LinkReversalAutomaton, LinkReversalState
from repro.core.graph import LinkReversalInstance, Orientation

Node = Hashable


class Parity(enum.Enum):
    """Derived variable ``parity[u]``: the parity of ``count[u]``."""

    EVEN = "even"
    ODD = "odd"

    @classmethod
    def of(cls, count: int) -> "Parity":
        """The parity of an integer step count."""
        return cls.EVEN if count % 2 == 0 else cls.ODD

    def flipped(self) -> "Parity":
        """The opposite parity."""
        return Parity.ODD if self is Parity.EVEN else Parity.EVEN


class NewPRState(LinkReversalState):
    """State of NewPR: edge directions plus the history variable ``count[u]``."""

    __slots__ = ("counts",)

    def __init__(
        self,
        instance: LinkReversalInstance,
        orientation: Orientation,
        counts: Optional[Mapping[Node, int]] = None,
    ):
        super().__init__(instance, orientation)
        if counts is None:
            counts = {u: 0 for u in instance.nodes}
        self.counts: Dict[Node, int] = dict(counts)

    def count(self, u: Node) -> int:
        """The history variable ``count[u]``: steps taken by ``u`` so far."""
        return self.counts[u]

    def parity(self, u: Node) -> Parity:
        """The derived variable ``parity[u]``."""
        return Parity.of(self.counts[u])

    def total_steps(self) -> int:
        """Total number of steps taken by all nodes (including dummy steps)."""
        return sum(self.counts.values())

    def copy(self) -> "NewPRState":
        return NewPRState(self.instance, self.orientation.copy(), dict(self.counts))

    def signature(self) -> Tuple:
        """Orientation bitmask plus the counts in instance node order."""
        counts = self.counts
        return (
            self.graph_signature(),
            tuple(counts[u] for u in self.instance.nodes),
        )


class NewPartialReversal(LinkReversalAutomaton):
    """Algorithm 2: the parity-based Partial Reversal variant of the paper."""

    name = "NewPR"

    def initial_state(self) -> NewPRState:
        return NewPRState(self.instance, self.instance.initial_orientation())

    def reversal_targets(self, state: NewPRState, u: Node) -> FrozenSet[Node]:
        """The set ``u`` would reverse if it stepped now (may be empty — dummy step)."""
        if state.parity(u) is Parity.EVEN:
            return self.instance.in_nbrs(u)
        return self.instance.out_nbrs(u)

    def is_dummy_step(self, state: NewPRState, u: Node) -> bool:
        """Whether a ``reverse(u)`` step taken now would reverse no edges."""
        return not self.reversal_targets(state, u)

    def _apply_reverse(self, state: NewPRState, u: Node) -> NewPRState:
        new_state = state.copy()
        orientation = new_state.orientation

        if state.parity(u) is Parity.EVEN:
            targets = self.instance.in_nbrs(u)
        else:
            targets = self.instance.out_nbrs(u)
        # u is a sink, so every targeted edge currently points at it
        orientation.reverse_edges_from(u, targets)
        new_state.counts[u] = state.counts[u] + 1
        return new_state
