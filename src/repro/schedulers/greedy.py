"""Greedy (maximally concurrent) scheduler.

Every "round" all currently enabled nodes take a step.  For the PR automaton
this is realised as a single ``reverse(S)`` action with ``S`` equal to the
full sink set — exactly the concurrent steps the paper's Algorithm 1 allows.
For the single-node automata (OneStepPR, NewPR, FR, BLL, heights) the round is
serialised: the sinks present at the start of the round step one after the
other.  Because sinks are pairwise non-adjacent, serialising a round never
disables a node that was enabled at the round start, so the serialisation is
faithful to the concurrent round.

The greedy schedule is the one used in the classical work analyses (Busch &
Tirthapura count reversals over greedy executions), so the work benchmarks use
this scheduler by default.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Hashable, Optional

from repro.automata.ioa import Action, IOAutomaton
from repro.core.pr import PartialReversal
from repro.schedulers.base import Scheduler

Node = Hashable


class GreedyScheduler(Scheduler):
    """All sinks step every round (concurrently for PR, serialised otherwise).

    Parameters
    ----------
    seed:
        Unused, accepted for interface uniformity with the random scheduler so
        experiment sweeps can construct every scheduler the same way.
    concurrent_for_pr:
        When ``True`` (default) and the automaton supports set actions, one
        ``reverse(S)`` per round is issued.  When ``False``, rounds are
        serialised even for PR.
    """

    def __init__(self, seed: Optional[int] = None, concurrent_for_pr: bool = True):
        self.seed = seed
        self.concurrent_for_pr = concurrent_for_pr
        self._round_queue: Deque[Node] = deque()
        self.rounds: int = 0

    def reset(self, automaton: IOAutomaton) -> None:
        self._round_queue = deque()
        self.rounds = 0

    def select(self, automaton: IOAutomaton, state) -> Optional[Action]:
        if self.concurrent_for_pr and isinstance(automaton, PartialReversal):
            action = automaton.greedy_action(state)
            if action is not None:
                self.rounds += 1
            return action

        # serialised rounds for single-node automata
        while True:
            while self._round_queue:
                node = self._round_queue.popleft()
                action = self._single_action(automaton, node)
                if automaton.is_enabled(state, action):
                    return action
            sinks = self._enabled_nodes(automaton, state)
            if not sinks:
                return None
            self.rounds += 1
            self._round_queue = deque(sinks)
