"""Scheduler interface and simple building-block schedulers.

A scheduler plays the role of the adversary in the paper's execution model:
given the current state it selects one enabled action (or ``None`` to declare
quiescence).  Schedulers are deliberately stateful objects — some keep a
round structure or a replay position — so :meth:`Scheduler.reset` is called by
the execution engine before a run starts.
"""

from __future__ import annotations

import abc
from typing import Hashable, Iterable, List, Optional, Sequence

from repro.automata.ioa import Action, IOAutomaton
from repro.core.base import LinkReversalAutomaton, Reverse
from repro.core.heights import _HeightAutomaton
from repro.core.pr import PartialReversal, ReverseSet

Node = Hashable

#: Automata whose enabled single-node actions are exactly the non-destination
#: sinks of the state — the invariant the sink-set fast path relies on.
_SINK_ENABLED_AUTOMATA = (LinkReversalAutomaton, PartialReversal, _HeightAutomaton)


class Scheduler(abc.ABC):
    """Abstract scheduler: picks the next action of an execution."""

    @abc.abstractmethod
    def select(self, automaton: IOAutomaton, state) -> Optional[Action]:
        """Return an action enabled in ``state``, or ``None`` if none should fire.

        Returning ``None`` ends the run; for the link-reversal automata every
        scheduler in this package returns ``None`` exactly when no action is
        enabled (quiescence), so runs always converge to the same final graph
        regardless of the scheduler (confluence).
        """

    def reset(self, automaton: IOAutomaton) -> None:
        """Reset internal bookkeeping before a fresh run (default: no-op)."""

    # ------------------------------------------------------------------
    # helpers shared by concrete schedulers
    # ------------------------------------------------------------------
    @staticmethod
    def _enabled_nodes(automaton: IOAutomaton, state) -> List[Node]:
        """All nodes with an enabled single-node action, in deterministic order.

        Fast path: for the link-reversal automata the enabled single-node
        actions are by definition exactly the non-destination sinks, and every
        such state maintains its sink set incrementally, so ``state.sinks()``
        answers without touching the action machinery.  The shortcut is keyed
        on the automaton types that own that invariant; anything else falls
        back to enumerating ``enabled_single_actions``.
        """
        if isinstance(automaton, _SINK_ENABLED_AUTOMATA):
            return list(state.sinks())
        nodes: List[Node] = []
        for action in automaton.enabled_single_actions(state):
            actors = action.actors()
            if len(actors) == 1:
                nodes.append(actors[0])
        return nodes

    @staticmethod
    def _single_action(automaton: IOAutomaton, node: Node) -> Action:
        """Build the single-node action appropriate for ``automaton``."""
        if isinstance(automaton, PartialReversal):
            return ReverseSet(frozenset((node,)))
        return Reverse(node)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"<{type(self).__name__}>"


class TraceScheduler(Scheduler):
    """Replays an explicit sequence of stepping nodes.

    Nodes in the trace that are not enabled when their turn comes are either
    skipped (``strict=False``, the default) or cause a :class:`ValueError`
    (``strict=True``).  The scheduler declares quiescence when the trace is
    exhausted.
    """

    def __init__(self, nodes: Sequence[Node], strict: bool = False):
        self.trace = list(nodes)
        self.strict = strict
        self._position = 0

    def reset(self, automaton: IOAutomaton) -> None:
        self._position = 0

    def select(self, automaton: IOAutomaton, state) -> Optional[Action]:
        while self._position < len(self.trace):
            node = self.trace[self._position]
            self._position += 1
            action = self._single_action(automaton, node)
            if automaton.is_enabled(state, action):
                return action
            if self.strict:
                raise ValueError(f"trace node {node!r} is not enabled at position {self._position - 1}")
        return None


class RoundRobinScheduler(Scheduler):
    """Fair rotation: repeatedly cycles over the nodes, stepping each enabled one.

    Guarantees that every continuously enabled node is eventually scheduled,
    i.e. the executions it produces are weakly fair.
    """

    def __init__(self) -> None:
        self._cursor = 0
        self._order: List[Node] = []

    def reset(self, automaton: IOAutomaton) -> None:
        self._cursor = 0
        self._order = list(automaton.instance.non_destination_nodes)

    def select(self, automaton: IOAutomaton, state) -> Optional[Action]:
        if not self._order:
            self._order = list(automaton.instance.non_destination_nodes)
        n = len(self._order)
        for offset in range(n):
            node = self._order[(self._cursor + offset) % n]
            action = self._single_action(automaton, node)
            if automaton.is_enabled(state, action):
                self._cursor = (self._cursor + offset + 1) % n
                return action
        return None
