"""Schedulers (adversaries) that choose which enabled action fires next.

Link-reversal algorithms are *self-stabilising* in the sense that any order of
sink steps converges; how much work is done, however, depends heavily on the
order.  The paper's automata leave the choice of the stepping set to an
implicit adversary; this subpackage makes that adversary explicit so the
benchmarks can study best-case, average-case and worst-case behaviour.

Available schedulers
--------------------

``GreedyScheduler``
    Every round, all current sinks step (the maximally concurrent schedule;
    for PR this is a single ``reverse(S)`` action with ``S`` = all sinks).
``SequentialScheduler``
    Deterministic: always the first enabled node in instance order.
``RandomScheduler``
    Uniformly random enabled node (seeded).
``AdversarialScheduler``
    Heuristic worst case: prefers sinks far from the destination, which
    maximises reversal cascades on the worst-case families.
``LazyScheduler``
    Prefers sinks close to the destination.
``RoundRobinScheduler``
    Fair rotation over the nodes.
``TraceScheduler``
    Replays an explicit node sequence (used by the simulation-relation
    checker and by regression tests).
"""

from typing import Optional

from repro.schedulers.base import Scheduler, TraceScheduler, RoundRobinScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.adversarial import AdversarialScheduler, LazyScheduler

#: Name → factory registry shared by the CLI and the experiment campaigns.
#: Every factory takes a seed (ignored by the deterministic schedulers) so
#: sweeps can construct any scheduler uniformly.
SCHEDULER_FACTORIES = {
    "greedy": lambda seed: GreedyScheduler(seed=seed),
    "sequential": lambda seed: SequentialScheduler(seed=seed),
    "random": lambda seed: RandomScheduler(seed=seed),
    "adversarial": lambda seed: AdversarialScheduler(seed=seed),
    "lazy": lambda seed: LazyScheduler(seed=seed),
    "round-robin": lambda seed: RoundRobinScheduler(),
}


def make_scheduler(name: str, seed: Optional[int] = None) -> Scheduler:
    """Build the named scheduler with the given seed."""
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {', '.join(sorted(SCHEDULER_FACTORIES))}"
        ) from None
    return factory(seed)


__all__ = [
    "AdversarialScheduler",
    "GreedyScheduler",
    "LazyScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "SCHEDULER_FACTORIES",
    "Scheduler",
    "SequentialScheduler",
    "TraceScheduler",
    "make_scheduler",
]
