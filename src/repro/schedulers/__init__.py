"""Schedulers (adversaries) that choose which enabled action fires next.

Link-reversal algorithms are *self-stabilising* in the sense that any order of
sink steps converges; how much work is done, however, depends heavily on the
order.  The paper's automata leave the choice of the stepping set to an
implicit adversary; this subpackage makes that adversary explicit so the
benchmarks can study best-case, average-case and worst-case behaviour.

Available schedulers
--------------------

``GreedyScheduler``
    Every round, all current sinks step (the maximally concurrent schedule;
    for PR this is a single ``reverse(S)`` action with ``S`` = all sinks).
``SequentialScheduler``
    Deterministic: always the first enabled node in instance order.
``RandomScheduler``
    Uniformly random enabled node (seeded).
``AdversarialScheduler``
    Heuristic worst case: prefers sinks far from the destination, which
    maximises reversal cascades on the worst-case families.
``LazyScheduler``
    Prefers sinks close to the destination.
``RoundRobinScheduler``
    Fair rotation over the nodes.
``TraceScheduler``
    Replays an explicit node sequence (used by the simulation-relation
    checker and by regression tests).
"""

from repro.schedulers.base import Scheduler, TraceScheduler, RoundRobinScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.adversarial import AdversarialScheduler, LazyScheduler

__all__ = [
    "AdversarialScheduler",
    "GreedyScheduler",
    "LazyScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SequentialScheduler",
    "TraceScheduler",
]
