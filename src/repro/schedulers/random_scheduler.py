"""Seeded uniformly-random scheduler.

At every step one of the currently enabled nodes is chosen uniformly at
random.  For the PR automaton the scheduler can additionally fire a random
*subset* of the sinks as a single concurrent ``reverse(S)`` action
(``subset_probability > 0``), exercising the set-valued action space that the
other schedulers do not reach.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.automata.ioa import Action, IOAutomaton
from repro.core.pr import PartialReversal, ReverseSet
from repro.schedulers.base import Scheduler


class RandomScheduler(Scheduler):
    """Uniformly random choice among enabled nodes (reproducible via ``seed``).

    Parameters
    ----------
    seed:
        Seed for the private :class:`random.Random` instance.
    subset_probability:
        With this probability (and only when the automaton supports set
        actions, i.e. PR), a uniformly random non-empty subset of the sinks is
        fired as one concurrent action instead of a single node.
    """

    def __init__(self, seed: Optional[int] = None, subset_probability: float = 0.0):
        if not 0.0 <= subset_probability <= 1.0:
            raise ValueError("subset_probability must be in [0, 1]")
        self.seed = seed
        self.subset_probability = subset_probability
        self._rng = random.Random(seed)

    def reset(self, automaton: IOAutomaton) -> None:
        self._rng = random.Random(self.seed)

    def select(self, automaton: IOAutomaton, state) -> Optional[Action]:
        nodes = self._enabled_nodes(automaton, state)
        if not nodes:
            return None

        if (
            self.subset_probability > 0.0
            and isinstance(automaton, PartialReversal)
            and self._rng.random() < self.subset_probability
        ):
            size = self._rng.randint(1, len(nodes))
            subset = self._rng.sample(nodes, size)
            return ReverseSet(frozenset(subset))

        node = self._rng.choice(nodes)
        return self._single_action(automaton, node)
