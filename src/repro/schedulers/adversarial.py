"""Adversarial and lazy schedulers.

The worst-case Θ(n_b²) bound on total reversals (Busch & Tirthapura, quoted in
Section 1 of the paper) is attained on chain-like topologies when reversals
are propagated as far as possible before the "good" part of the graph absorbs
them.  :class:`AdversarialScheduler` approximates that adversary with a
distance heuristic: among the enabled sinks it always fires the one whose
undirected hop distance to the destination is largest, pushing reversal waves
back and forth across the bad region.  :class:`LazyScheduler` is the opposite
(closest sink first), which tends to finish quickly.

Both are heuristics, not exact worst/best cases; the work benchmarks compare
them against the greedy and random schedules to show the spread.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.automata.ioa import Action, IOAutomaton
from repro.schedulers.base import Scheduler

Node = Hashable


def _hop_distances_to_destination(instance) -> Dict[Node, int]:
    """Undirected BFS hop distance from every node to the destination."""
    distances: Dict[Node, int] = {instance.destination: 0}
    frontier = [instance.destination]
    while frontier:
        next_frontier = []
        for u in frontier:
            for v in instance.nbrs(u):
                if v not in distances:
                    distances[v] = distances[u] + 1
                    next_frontier.append(v)
        frontier = next_frontier
    infinity = len(instance.nodes) + 1
    return {u: distances.get(u, infinity) for u in instance.nodes}


class AdversarialScheduler(Scheduler):
    """Fire the enabled sink farthest (in hops) from the destination.

    Ties are broken by instance node order so runs are reproducible.
    """

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._distance: Dict[Node, int] = {}
        self._order: Dict[Node, int] = {}

    def reset(self, automaton: IOAutomaton) -> None:
        self._distance = _hop_distances_to_destination(automaton.instance)
        self._order = {u: i for i, u in enumerate(automaton.instance.nodes)}

    def select(self, automaton: IOAutomaton, state) -> Optional[Action]:
        if not self._distance:
            self.reset(automaton)
        nodes = self._enabled_nodes(automaton, state)
        if not nodes:
            return None
        node = max(nodes, key=lambda u: (self._distance[u], -self._order[u]))
        return self._single_action(automaton, node)


class LazyScheduler(Scheduler):
    """Fire the enabled sink closest (in hops) to the destination."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._distance: Dict[Node, int] = {}
        self._order: Dict[Node, int] = {}

    def reset(self, automaton: IOAutomaton) -> None:
        self._distance = _hop_distances_to_destination(automaton.instance)
        self._order = {u: i for i, u in enumerate(automaton.instance.nodes)}

    def select(self, automaton: IOAutomaton, state) -> Optional[Action]:
        if not self._distance:
            self.reset(automaton)
        nodes = self._enabled_nodes(automaton, state)
        if not nodes:
            return None
        node = min(nodes, key=lambda u: (self._distance[u], self._order[u]))
        return self._single_action(automaton, node)
