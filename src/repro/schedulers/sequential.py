"""Deterministic sequential scheduler.

Always fires the first enabled node in the instance's node declaration order.
This is the cheapest scheduler and the one used by default in unit tests and
documentation examples, because executions under it are fully reproducible
without a seed.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.ioa import Action, IOAutomaton
from repro.schedulers.base import Scheduler


class SequentialScheduler(Scheduler):
    """Pick the first enabled node in instance node order, one step at a time."""

    def __init__(self, seed: Optional[int] = None):
        # ``seed`` is accepted (and ignored) so scheduler sweeps can construct
        # every scheduler class uniformly.
        self.seed = seed

    def select(self, automaton: IOAutomaton, state) -> Optional[Action]:
        # the enabled nodes are exactly the non-destination sinks, already in
        # instance node order, so the first sink is the node to fire
        nodes = self._enabled_nodes(automaton, state)
        if not nodes:
            return None
        return self._single_action(automaton, nodes[0])
