"""Deterministic sequential scheduler.

Always fires the first enabled node in the instance's node declaration order.
This is the cheapest scheduler and the one used by default in unit tests and
documentation examples, because executions under it are fully reproducible
without a seed.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.ioa import Action, IOAutomaton
from repro.schedulers.base import Scheduler


class SequentialScheduler(Scheduler):
    """Pick the first enabled node in instance node order, one step at a time."""

    def __init__(self, seed: Optional[int] = None):
        # ``seed`` is accepted (and ignored) so scheduler sweeps can construct
        # every scheduler class uniformly.
        self.seed = seed

    def select(self, automaton: IOAutomaton, state) -> Optional[Action]:
        for node in automaton.instance.non_destination_nodes:
            action = self._single_action(automaton, node)
            if automaton.is_enabled(state, action):
                return action
        return None
