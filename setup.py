"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so the
package can also be installed in environments without network access to the
PEP 517 build requirements (``python setup.py develop`` or
``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
